// Concurrency stress tests — written to give ThreadSanitizer something to
// chew on (build with the `tsan` preset / AAD_SANITIZE=thread). Each test
// drives a shared-state hot path hard enough that an unlocked access, a
// missed notify, or an ordering bug has a real chance to manifest, and TSan
// turns "a chance" into a deterministic report.
//
// The suites also run (smaller) in the plain and ASan builds, where they
// assert the functional invariants: no lost items, no double-visits, no
// deadlocks, parallel == serial dedup results.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "hash/sha1.hpp"
#include "index/checkpoint.hpp"
#include "index/log_structured_index.hpp"
#include "index/memory_index.hpp"
#include "index/partitioned_index.hpp"
#include "util/bounded_queue.hpp"
#include "util/thread_pool.hpp"

namespace aadedupe {
namespace {

// TSan instrumentation costs ~5-15x; keep wall-clock comparable by scaling
// the storm sizes down (the interleaving coverage matters, not the volume).
#ifdef AAD_TSAN
constexpr std::size_t kScale = 1;
#else
constexpr std::size_t kScale = 8;
#endif

// ---- ThreadPool: contended parallel_for ------------------------------------

TEST(StressThreadPool, ContendedGrainsVisitEveryIndexOnce) {
  // Repeated parallel_for rounds with every grain shape over one pool: the
  // work-stealing counter, the futures, and the queue mutex all stay hot.
  ThreadPool pool(8);
  const std::size_t n = 2000 * kScale;
  std::vector<std::atomic<std::uint8_t>> hits(n);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{64}}) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.parallel_for(
        n, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " grain " << grain;
    }
  }
}

TEST(StressThreadPool, ConcurrentParallelForCallersShareOnePool) {
  // Several external threads each run their own parallel_for on the same
  // pool. Their chunk tasks interleave in the shared deque; each caller's
  // atomic cursor and error slot must stay isolated.
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 4;
  const std::size_t n = 1500 * kScale;
  std::vector<std::vector<std::atomic<std::uint8_t>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<std::uint8_t>>(n);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(
          n, [&, c](std::size_t i) { hits[c][i].fetch_add(1); },
          /*grain=*/1 + c % 3);
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[c][i].load(), 1u) << "caller " << c << " index " << i;
    }
  }
}

TEST(StressThreadPool, SubmitStormFromManyThreads) {
  // Producers race submit() against workers draining; the final count
  // proves no task was dropped between the lock release and notify.
  ThreadPool pool(4);
  constexpr std::size_t kProducers = 6;
  const std::size_t per_producer = 400 * kScale;
  std::atomic<std::size_t> ran{0};
  std::vector<std::future<void>> futures[kProducers];
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (auto& f : futures) f.reserve(per_producer);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < per_producer; ++i) {
        futures[p].push_back(pool.submit([&ran] { ++ran; }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(ran.load(), kProducers * per_producer);
}

// ---- BoundedQueue: producer/consumer storms --------------------------------

TEST(StressBoundedQueue, ManyProducersManyConsumersLoseNothing) {
  // Tight capacity (4) maximizes blocking on both conditions: producers
  // park on not_full_, consumers on not_empty_, and every push/pop pair
  // crosses the mutex. Token sum proves exactly-once delivery.
  BoundedQueue<std::uint64_t> queue(4);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  const std::uint64_t per_producer = 2000 * kScale;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(queue.push(p * per_producer + i));
      }
    });
  }

  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> count{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      // Mix blocking pop with opportunistic try_pop to cover both paths.
      for (;;) {
        std::optional<std::uint64_t> item = queue.try_pop();
        if (!item) item = queue.pop();
        if (!item) return;  // closed and drained
        sum.fetch_add(*item);
        count.fetch_add(1);
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  const std::uint64_t total = kProducers * per_producer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

TEST(StressBoundedQueue, CloseMidStormUnblocksEverybody) {
  // close() fires while producers are blocked on a full queue and consumers
  // are mid-drain; every thread must return (no lost wakeup), pushes after
  // close must report false, and items delivered never exceed items pushed.
  for (int round = 0; round < static_cast<int>(4 * kScale); ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<std::size_t> pushed{0};
    std::atomic<std::size_t> popped{0};
    std::vector<std::thread> threads;
    threads.reserve(5);
    for (int p = 0; p < 2; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < 10000; ++i) {
          if (!queue.push(i)) return;  // closed under us
          pushed.fetch_add(1);
        }
      });
    }
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&] {
        while (queue.pop()) popped.fetch_add(1);
      });
    }
    threads.emplace_back([&] { queue.close(); });
    for (auto& t : threads) t.join();
    EXPECT_LE(popped.load(), pushed.load() + 2);  // <= pushed + capacity slack
    EXPECT_FALSE(queue.push(-1));
  }
}

// ---- Index: lookups and mutations racing checkpoints -----------------------

TEST(StressIndex, LogStructuredLookupsRaceCheckpointsAndFlushes) {
  // Readers, writers, and a checkpoint thread share one LogStructuredIndex
  // with a memtable small enough that seals and compactions fire mid-storm.
  // The journal (checkpoint chain), the bloom filter, the entry cache, and
  // the segment list all mutate under the same locks the lookups take.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("aad_stress_lsi_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    index::LogStructuredIndex::Options options;
    options.memtable_limit = 256;
    options.max_segments = 4;
    index::LogStructuredIndex idx(dir, options);

    constexpr int kWriters = 4;
    const int per_writer = static_cast<int>(500 * kScale);
    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    threads.reserve(kWriters + 2);
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (int i = 0; i < per_writer; ++i) {
          const int key = w * per_writer + i;
          const auto d =
              hash::Sha1::hash(as_bytes("stress-" + std::to_string(key)));
          idx.insert(d, index::ChunkLocation{
                            static_cast<std::uint64_t>(key), 0, 1});
          ASSERT_TRUE(idx.lookup(d).has_value());
          idx.maybe_contains(
              hash::Sha1::hash(as_bytes("absent-" + std::to_string(key))));
        }
      });
    }
    threads.emplace_back([&] {  // batched reader
      std::vector<hash::Digest> digests;
      std::vector<std::optional<index::ChunkLocation>> found;
      while (!done.load(std::memory_order_relaxed)) {
        digests.clear();
        for (int i = 0; i < 64; ++i) {
          digests.push_back(
              hash::Sha1::hash(as_bytes("stress-" + std::to_string(i * 37))));
        }
        idx.lookup_batch(digests, found);
      }
    });
    threads.emplace_back([&] {  // checkpoint thread
      while (!done.load(std::memory_order_relaxed)) {
        index::BufferCheckpointSink sink;
        idx.checkpoint(sink);
        index::BufferCheckpointSink full;
        idx.checkpoint_full(full);
        std::this_thread::yield();
      }
    });
    for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
    done.store(true, std::memory_order_relaxed);
    threads[kWriters].join();
    threads[kWriters + 1].join();

    EXPECT_EQ(idx.size(),
              static_cast<std::uint64_t>(kWriters) *
                  static_cast<std::uint64_t>(per_writer));
    // A final checkpoint drains whatever the racing deltas missed, and a
    // fresh consumer replaying it converges on the same contents.
    index::BufferCheckpointSink final_full;
    idx.checkpoint_full(final_full);
    index::MemoryChunkIndex replica;
    index::BufferCheckpointSource source(final_full.buffer());
    replica.restore(source);
    EXPECT_EQ(replica.size(), idx.size());
  }
  std::filesystem::remove_all(dir);
}

TEST(StressIndex, PartitionedShardsCheckpointWhileOtherShardsCommit) {
  // One thread per shard keeps inserting while the "sync" thread snapshots
  // the whole partitioned index — the exact overlap run_session creates
  // when the upload pipeline serializes the index as workers finish.
  index::PartitionedIndex idx;
  const std::vector<std::string> parts = {"doc", "mp3", "vmdk", "txt"};
  for (const auto& p : parts) idx.shard(p);

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(parts.size() + 1);
  for (const auto& p : parts) {
    threads.emplace_back([&idx, p] {
      index::ChunkIndex& shard = idx.shard(p);
      for (int i = 0; i < static_cast<int>(2000 * kScale); ++i) {
        const auto d = hash::Sha1::hash(as_bytes(p + std::to_string(i)));
        shard.insert(d, index::ChunkLocation{
                            static_cast<std::uint64_t>(i), 0, 1});
        shard.lookup(d);
      }
    });
  }
  std::uint64_t checkpoints = 0;
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      index::BufferCheckpointSink sink;
      idx.checkpoint(sink);
      ++checkpoints;
      std::this_thread::yield();
    }
  });
  for (std::size_t i = 0; i < parts.size(); ++i) threads[i].join();
  done.store(true, std::memory_order_relaxed);
  threads.back().join();

  EXPECT_GT(checkpoints, 0u);
  EXPECT_EQ(idx.total_size(), parts.size() * 2000 * kScale);
  // The chain the sync thread shipped plus one final delta reconstructs
  // the full index on a consumer.
  index::BufferCheckpointSink full;
  idx.checkpoint_full(full);
  index::PartitionedIndex replica;
  index::BufferCheckpointSource source(full.buffer());
  replica.restore(source);
  EXPECT_EQ(replica.total_size(), idx.total_size());
}

// ---- Parallel backup session over a synthetic dataset ----------------------

TEST(StressSession, ParallelFrontEndMatchesSerialUnderLoad) {
  // A multi-session parallel backup (two-phase file-granularity front end,
  // 8 workers, deliberately tiny batch budget so the batch loop and the
  // per-stream commit spans cycle many times) against the same dataset run
  // serially. Under TSan this is the main course: chunking workers racing
  // the shared pool, per-stream shards committing concurrently, the
  // key-store mutex, and the upload pipeline all live here.
  dataset::DatasetConfig config;
  config.seed = 20260807;
  config.session_bytes = (1ull << 20) * kScale;
  config.max_file_bytes = 256u << 10;

  dataset::DatasetGenerator gen_parallel(config);
  dataset::DatasetGenerator gen_serial(config);

  cloud::CloudTarget target_p, target_s;
  core::AaDedupeOptions par_opts;
  par_opts.parallel = true;
  par_opts.granularity = core::ParallelGranularity::kFile;
  par_opts.front_end_batch_bytes = 256u << 10;
  par_opts.worker_threads = 8;
  core::AaDedupeOptions ser_opts;
  ser_opts.parallel = false;

  core::AaDedupeScheme parallel_scheme(target_p, par_opts);
  core::AaDedupeScheme serial_scheme(target_s, ser_opts);

  dataset::Snapshot snap_p, snap_s;
  for (int session = 0; session < 3; ++session) {
    snap_p = session == 0 ? gen_parallel.initial() : gen_parallel.next(snap_p);
    snap_s = session == 0 ? gen_serial.initial() : gen_serial.next(snap_s);
    const auto report_p = parallel_scheme.backup(snap_p);
    const auto report_s = serial_scheme.backup(snap_s);
    // Identical dedup decisions, not just identical bytes: the paper's
    // equivalence claim (§IV) is about effectiveness, so compare the
    // metrics that define it.
    EXPECT_EQ(report_p.dataset_bytes, report_s.dataset_bytes);
    EXPECT_EQ(report_p.transferred_bytes, report_s.transferred_bytes);
    EXPECT_EQ(report_p.upload_requests, report_s.upload_requests);
  }

  EXPECT_EQ(parallel_scheme.aa_index().total_size(),
            serial_scheme.aa_index().total_size());
  for (std::size_t i = 0; i < snap_p.files.size();
       i += (i + 11 < snap_p.files.size() ? std::size_t{11} : std::size_t{1})) {
    ASSERT_EQ(parallel_scheme.restore_file(snap_p.files[i].path),
              serial_scheme.restore_file(snap_s.files[i].path))
        << snap_p.files[i].path;
  }
}

TEST(StressSession, ConcurrentIndependentSchemesDoNotInterfere) {
  // Two full backup stacks on two OS threads: everything is supposed to be
  // instance-confined, so TSan must stay silent and the results must match
  // a reference run byte-for-byte.
  dataset::DatasetConfig config;
  config.seed = 7;
  config.session_bytes = 1ull << 20;
  config.max_file_bytes = 128u << 10;

  auto run_backup = [&config]() -> std::size_t {
    dataset::DatasetGenerator gen(config);
    cloud::CloudTarget target;
    core::AaDedupeOptions opts;
    opts.parallel = true;
    opts.granularity = core::ParallelGranularity::kFile;
    opts.worker_threads = 4;
    core::AaDedupeScheme scheme(target, opts);
    scheme.backup(gen.initial());
    return scheme.aa_index().total_size();
  };

  std::size_t size_a = 0, size_b = 0;
  std::thread a([&] { size_a = run_backup(); });
  std::thread b([&] { size_b = run_backup(); });
  a.join();
  b.join();
  EXPECT_EQ(size_a, size_b);
  EXPECT_GT(size_a, 0u);
}

}  // namespace
}  // namespace aadedupe
