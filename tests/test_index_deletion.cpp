// Deletion/update tests for every ChunkIndex implementation — the index
// operations behind file deletion and garbage collection. The persistent
// index's tombstone mechanics get extra scrutiny (open-addressing
// deletion is a classic source of probe-chain corruption).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "hash/sha1.hpp"
#include "index/memory_index.hpp"
#include "index/persistent_index.hpp"
#include "index/sim_disk_index.hpp"

namespace aadedupe::index {
namespace {

namespace fs = std::filesystem;

hash::Digest digest_of(int i) {
  return hash::Sha1::hash(as_bytes("del-" + std::to_string(i)));
}

// ---- Interface-level behaviour, parameterized over implementations ----

class IndexDeletion : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "persistent") {
      std::string test_name = ::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name();
      std::replace(test_name.begin(), test_name.end(), '/', '_');
      path_ = fs::temp_directory_path() /
              ("aad_del_" + std::to_string(::getpid()) + "_" + test_name);
      // Small table to exercise probe chains and growth.
      PersistentChunkIndex::Options options;
      options.initial_slots = 16;
      index_ = std::make_unique<PersistentChunkIndex>(path_.string(),
                                                      options);
    } else if (GetParam() == "simdisk") {
      index_ = std::make_unique<SimulatedDiskIndex>(
          std::make_unique<MemoryChunkIndex>(), SimDiskOptions{},
          [this](double s) { charged_ += s; });
    } else {
      index_ = std::make_unique<MemoryChunkIndex>();
    }
  }
  void TearDown() override {
    index_.reset();
    if (!path_.empty()) fs::remove(path_);
  }

  std::unique_ptr<ChunkIndex> index_;
  fs::path path_;
  double charged_ = 0;
};

TEST_P(IndexDeletion, RemoveMakesLookupMiss) {
  index_->insert(digest_of(1), ChunkLocation{1, 2, 3});
  EXPECT_TRUE(index_->remove(digest_of(1)));
  EXPECT_FALSE(index_->lookup(digest_of(1)).has_value());
  EXPECT_EQ(index_->size(), 0u);
}

TEST_P(IndexDeletion, RemoveAbsentReturnsFalse) {
  EXPECT_FALSE(index_->remove(digest_of(99)));
}

TEST_P(IndexDeletion, RemoveLeavesOthersIntact) {
  for (int i = 0; i < 30; ++i) {
    index_->insert(digest_of(i), ChunkLocation{static_cast<std::uint64_t>(i),
                                               0, 1});
  }
  for (int i = 0; i < 30; i += 3) EXPECT_TRUE(index_->remove(digest_of(i)));
  for (int i = 0; i < 30; ++i) {
    const auto found = index_->lookup(digest_of(i));
    if (i % 3 == 0) {
      EXPECT_FALSE(found.has_value()) << i;
    } else {
      ASSERT_TRUE(found.has_value()) << i;
      EXPECT_EQ(found->container_id, static_cast<std::uint64_t>(i));
    }
  }
  EXPECT_EQ(index_->size(), 20u);
}

TEST_P(IndexDeletion, ReinsertAfterRemove) {
  index_->insert(digest_of(1), ChunkLocation{1, 0, 1});
  index_->remove(digest_of(1));
  EXPECT_TRUE(index_->insert(digest_of(1), ChunkLocation{2, 0, 1}));
  EXPECT_EQ(index_->lookup(digest_of(1))->container_id, 2u);
}

TEST_P(IndexDeletion, UpdateRepointsExistingEntry) {
  index_->insert(digest_of(1), ChunkLocation{1, 10, 100});
  EXPECT_TRUE(index_->update(digest_of(1), ChunkLocation{7, 70, 100}));
  const auto found = index_->lookup(digest_of(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->container_id, 7u);
  EXPECT_EQ(found->offset, 70u);
  EXPECT_EQ(index_->size(), 1u);
}

TEST_P(IndexDeletion, UpdateAbsentReturnsFalse) {
  EXPECT_FALSE(index_->update(digest_of(5), ChunkLocation{1, 1, 1}));
}

TEST_P(IndexDeletion, RemoveInsertChurnStaysConsistent) {
  // Exercise tombstone reuse under churn.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 40; ++i) {
      index_->insert(digest_of(i),
                     ChunkLocation{static_cast<std::uint64_t>(round), 0, 1});
    }
    for (int i = 0; i < 40; i += 2) index_->remove(digest_of(i));
  }
  // Final state: odd keys at round-0 location (first insert won every
  // round), even keys removed in the last round.
  for (int i = 0; i < 40; ++i) {
    const auto found = index_->lookup(digest_of(i));
    if (i % 2 == 0) {
      EXPECT_FALSE(found.has_value()) << i;
    } else {
      ASSERT_TRUE(found.has_value()) << i;
    }
  }
  EXPECT_EQ(index_->size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Implementations, IndexDeletion,
                         ::testing::Values("memory", "persistent",
                                           "simdisk"));

// ---- Persistent-index tombstone specifics ----

class PersistentTombstones : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("aad_tomb_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { fs::remove(path_); }
  fs::path path_;
};

TEST_F(PersistentTombstones, DeletionSurvivesReopen) {
  {
    PersistentChunkIndex idx(path_.string());
    for (int i = 0; i < 50; ++i) idx.insert(digest_of(i), {});
    for (int i = 0; i < 50; i += 2) idx.remove(digest_of(i));
    idx.flush();
  }
  PersistentChunkIndex reopened(path_.string());
  EXPECT_EQ(reopened.size(), 25u);
  EXPECT_FALSE(reopened.lookup(digest_of(0)).has_value());
  EXPECT_TRUE(reopened.lookup(digest_of(1)).has_value());
}

TEST_F(PersistentTombstones, GrowthDropsTombstones) {
  PersistentChunkIndex::Options options;
  options.initial_slots = 16;
  PersistentChunkIndex idx(path_.string(), options);
  // Insert/remove churn forces growth through tombstone pressure.
  for (int i = 0; i < 200; ++i) {
    idx.insert(digest_of(i), {});
    if (i % 2 == 0) idx.remove(digest_of(i));
  }
  EXPECT_EQ(idx.size(), 100u);
  for (int i = 1; i < 200; i += 2) {
    EXPECT_TRUE(idx.lookup(digest_of(i)).has_value()) << i;
  }
  // The table grew enough for the live entries; reopen agrees.
  idx.flush();
  PersistentChunkIndex reopened(path_.string());
  EXPECT_EQ(reopened.size(), 100u);
}

TEST_F(PersistentTombstones, SerializeSkipsTombstones) {
  PersistentChunkIndex idx(path_.string());
  idx.insert(digest_of(1), {});
  idx.insert(digest_of(2), {});
  idx.remove(digest_of(1));

  MemoryChunkIndex restored;
  restored.deserialize(idx.serialize());
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_FALSE(restored.lookup(digest_of(1)).has_value());
  EXPECT_TRUE(restored.lookup(digest_of(2)).has_value());
}

TEST_F(PersistentTombstones, UpdateSurvivesReopen) {
  {
    PersistentChunkIndex idx(path_.string());
    idx.insert(digest_of(1), ChunkLocation{1, 1, 1});
    idx.update(digest_of(1), ChunkLocation{9, 9, 9});
    idx.flush();
  }
  PersistentChunkIndex reopened(path_.string());
  EXPECT_EQ(reopened.lookup(digest_of(1))->container_id, 9u);
}

}  // namespace
}  // namespace aadedupe::index
