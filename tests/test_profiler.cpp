// SpanProfiler tests: lifecycle (exclusive start, idempotent stop,
// restart resets state), span attribution of real SIGPROF ticks, and the
// folded-stack / JSON encodings. Runs on the tsan rung too — the handler
// and fold() are exactly the code paths TSan should see.
#include "telemetry/profiler.hpp"

#include <gtest/gtest.h>

#include <ctime>
#include <map>
#include <string>

#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {
namespace {

/// Burn process CPU until the profiler has at least `want` samples or
/// `budget_s` of CPU time has gone by. ITIMER_PROF ticks on CPU time, so
/// a generous budget makes this deterministic even on loaded machines —
/// and the kernel rounds the period up to its tick (~10 ms), so the
/// budget must cover many ticks, not many requested periods.
std::uint64_t burn_until_samples(const SpanProfiler& profiler,
                                 std::uint64_t want, double budget_s) {
  const std::clock_t start = std::clock();
  volatile std::uint64_t sink = 0;
  while (profiler.sample_count() < want) {
    for (int i = 0; i < 50'000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
    const double spent =
        static_cast<double>(std::clock() - start) / CLOCKS_PER_SEC;
    if (spent > budget_s) break;
  }
  return profiler.sample_count();
}

TEST(SpanProfiler, LifecycleStopIsIdempotentAndRestartResets) {
  SpanProfiler profiler(1000);
  EXPECT_FALSE(profiler.running());
  profiler.stop();  // never started: no-op
  EXPECT_FALSE(profiler.running());

  profiler.start();
  EXPECT_TRUE(profiler.running());
  burn_until_samples(profiler, 1, 0.5);
  profiler.stop();
  profiler.stop();  // second stop: no-op
  EXPECT_FALSE(profiler.running());

  // start() discards the previous run's samples.
  profiler.start();
  EXPECT_EQ(profiler.sample_count(), 0u);
  EXPECT_EQ(profiler.dropped_count(), 0u);
  profiler.stop();
}

TEST(SpanProfiler, OnlyOneProfilerMayBeActive) {
  SpanProfiler first;
  SpanProfiler second;
  first.start();
  // SIGPROF has one process-wide disposition; a second start must refuse
  // rather than silently steal it.
  EXPECT_THROW(second.start(), PreconditionError);
  first.stop();
  second.start();  // fine once the first released the signal
  second.stop();
}

TEST(SpanProfiler, ConstructorRejectsZeroPeriod) {
  EXPECT_THROW(SpanProfiler(0), PreconditionError);
}

TEST(SpanProfiler, EmptyProfilerFoldsToNothing) {
  SpanProfiler profiler;
  EXPECT_TRUE(profiler.fold().empty());
  EXPECT_EQ(profiler.folded_text(), "");

  JsonValue doc;
  profiler.fill_json(doc);
  EXPECT_EQ(doc.find("samples")->as_uint(), 0u);
  EXPECT_EQ(doc.find("dropped")->as_uint(), 0u);
  EXPECT_EQ(doc.find("folded")->size(), 0u);
}

TEST(SpanProfiler, SamplesAttributeToTheLiveSpanStack) {
  Tracer tracer;
  SpanProfiler profiler(1000);
  profiler.start();
  std::uint64_t samples = 0;
  {
    TraceSpan session(&tracer, Stage::kSession);
    TraceSpan fingerprint(&tracer, Stage::kFingerprint, "doc");
    // ~10 ms kernel ticks: asking for 3 samples needs ~30 ms of CPU; give
    // it 4 s of budget so slow sanitizer builds still get there.
    samples = burn_until_samples(profiler, 3, 4.0);
  }
  profiler.stop();
  ASSERT_GE(samples, 1u) << "no SIGPROF ticks landed within the budget";

  const std::map<std::string, std::uint64_t> folded = profiler.fold();
  // Every CPU-burning tick inside the two spans folds to the full
  // root->leaf stack with the leaf span's category attached.
  std::uint64_t attributed = 0;
  for (const auto& [stack, count] : folded) {
    if (stack == "session;fingerprint@doc") attributed += count;
  }
  EXPECT_GT(attributed, 0u)
      << "folded stacks: " << profiler.folded_text();

  // folded_text: one "stack count" line per fold() entry.
  const std::string text = profiler.folded_text();
  EXPECT_NE(text.find("session;fingerprint@doc "), std::string::npos);
  JsonValue doc;
  profiler.fill_json(doc);
  EXPECT_EQ(doc.find("samples")->as_uint(), samples);
  EXPECT_EQ(doc.find("period_us")->as_uint(), 1000u);
  EXPECT_EQ(doc.find("folded")->size(), folded.size());
}

TEST(SpanProfiler, TicksOutsideAnySpanFoldToUntraced) {
  SpanProfiler profiler(1000);
  profiler.start();
  const std::uint64_t samples = burn_until_samples(profiler, 2, 4.0);
  profiler.stop();
  ASSERT_GE(samples, 1u) << "no SIGPROF ticks landed within the budget";
  const auto folded = profiler.fold();
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded.begin()->first, "untraced");
}

}  // namespace
}  // namespace aadedupe::telemetry
