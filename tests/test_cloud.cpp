// Cloud simulation tests: object store accounting, WAN-link timing, the
// paper's S3 cost model, and the CloudTarget composite.
#include <gtest/gtest.h>

#include "cloud/cloud_target.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/object_store.hpp"
#include "cloud/wan_link.hpp"
#include "util/bytes.hpp"

namespace aadedupe::cloud {
namespace {

TEST(ObjectStore, PutGetRoundTrip) {
  ObjectStore store;
  store.put("k1", to_buffer("hello"));
  const auto got = store.get("k1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(aadedupe::to_string(ConstByteSpan{*got}), "hello");
  EXPECT_FALSE(store.get("k2").has_value());
}

TEST(ObjectStore, OverwriteAdjustsStoredBytes) {
  ObjectStore store;
  store.put("k", ByteBuffer(100));
  EXPECT_EQ(store.stored_bytes(), 100u);
  store.put("k", ByteBuffer(40));
  EXPECT_EQ(store.stored_bytes(), 40u);
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(ObjectStore, RemoveFreesBytes) {
  ObjectStore store;
  store.put("k", ByteBuffer(100));
  EXPECT_TRUE(store.remove("k"));
  EXPECT_FALSE(store.remove("k"));
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_FALSE(store.exists("k"));
}

TEST(ObjectStore, ListByPrefixSorted) {
  ObjectStore store;
  store.put("containers/c2", ByteBuffer(1));
  store.put("containers/c10", ByteBuffer(1));
  store.put("meta/s0", ByteBuffer(1));
  const auto keys = store.list("containers/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "containers/c10");  // lexicographic
  EXPECT_EQ(keys[1], "containers/c2");
}

TEST(ObjectStore, StatsCountRequestsAndBytes) {
  ObjectStore store;
  store.put("a", ByteBuffer(10));
  store.put("b", ByteBuffer(20));
  store.get("a");
  store.get("missing");
  store.remove("b");
  const StoreStats s = store.stats();
  EXPECT_EQ(s.put_requests, 2u);
  EXPECT_EQ(s.get_requests, 2u);
  EXPECT_EQ(s.delete_requests, 1u);
  EXPECT_EQ(s.bytes_uploaded, 30u);
  EXPECT_EQ(s.bytes_downloaded, 10u);
}

TEST(WanLink, UploadTimeMatchesBandwidthPlusOverhead) {
  WanLink link;
  link.upload_bytes_per_s = 500000;
  link.per_request_s = 0.05;
  // 1 MB in one request: 2.0 s of wire time + 0.05 s overhead.
  EXPECT_DOUBLE_EQ(link.upload_seconds(1000000, 1), 2.05);
  // Same bytes split into 100 requests cost 99 x 0.05 s more.
  EXPECT_NEAR(link.upload_seconds(1000000, 100) -
                  link.upload_seconds(1000000, 1),
              99 * 0.05, 1e-9);
}

TEST(WanLink, DownloadFasterThanUploadByDefault) {
  const WanLink link;
  EXPECT_LT(link.download_seconds(1000000, 1),
            link.upload_seconds(1000000, 1));
}

TEST(CostModel, MatchesPaperPricing) {
  const CostModel model;  // April 2011 S3 prices
  // 10 GB stored for a month: 10 x $0.14.
  EXPECT_NEAR(model.storage_cost(10ull * 1000 * 1000 * 1000), 1.4, 1e-9);
  // 10 GB uploaded: 10 x $0.10.
  EXPECT_NEAR(model.transfer_cost(10ull * 1000 * 1000 * 1000), 1.0, 1e-9);
  // 50,000 requests: 50 x $0.01.
  EXPECT_NEAR(model.request_cost(50000), 0.5, 1e-9);
  EXPECT_NEAR(model.monthly_cost(10ull * 1000 * 1000 * 1000,
                                 10ull * 1000 * 1000 * 1000, 50000),
              2.9, 1e-9);
}

TEST(CostModel, RequestCostDominatesForTinyObjects) {
  // The phenomenon behind Fig. 10: shipping 1 GB as 4 KB objects costs far
  // more in requests than as 1 MB containers.
  const CostModel model;
  const std::uint64_t gb = 1000ull * 1000 * 1000;
  const double tiny_requests = model.request_cost(gb / 4096);
  const double container_requests = model.request_cost(gb / (1024 * 1024));
  EXPECT_GT(tiny_requests, 100 * container_requests);
}

TEST(CloudTarget, AccumulatesTransferTime) {
  CloudTarget target;
  EXPECT_DOUBLE_EQ(target.transfer_seconds(), 0.0);
  // 1 s at 500 KB/s + overhead
  EXPECT_TRUE(target.upload("a", ByteBuffer(500000)).ok());
  EXPECT_NEAR(target.transfer_seconds(), 1.0 + target.link().per_request_s,
              1e-9);
  target.reset_transfer_clock();
  EXPECT_DOUBLE_EQ(target.transfer_seconds(), 0.0);
}

TEST(CloudTarget, DownloadCountsTowardTransferTime) {
  CloudTarget target;
  EXPECT_TRUE(target.upload("a", ByteBuffer(1000000)).ok());
  target.reset_transfer_clock();
  const auto got = target.download("a");
  ASSERT_TRUE(got.ok());
  EXPECT_NEAR(target.transfer_seconds(),
              1.0 + target.link().per_request_s, 1e-9);  // 1 MB at 1 MB/s
}

TEST(CloudTarget, MissingDownloadIsTypedNotFound) {
  CloudTarget target;
  const auto got = target.download("nope");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error(), CloudError::kNotFound);
  EXPECT_DOUBLE_EQ(target.transfer_seconds(), 0.0);
}

TEST(CloudTarget, RemoveObjectReportsExistence) {
  CloudTarget target;
  EXPECT_TRUE(target.upload("a", ByteBuffer(10)).ok());
  const auto removed = target.remove_object("a");
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed.value());
  const auto again = target.remove_object("a");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value());
}

TEST(CloudTarget, MonthlyCostUsesAccumulatedState) {
  CloudTarget target;
  EXPECT_TRUE(target.upload("a", ByteBuffer(1000000)).ok());
  EXPECT_TRUE(target.upload("b", ByteBuffer(1000000)).ok());
  const CostModel& m = target.cost_model();
  const double expected = m.monthly_cost(2000000, 2000000, 2);
  EXPECT_NEAR(target.monthly_cost(), expected, 1e-12);
}

TEST(CloudError, TaxonomyStringsAndRetryability) {
  EXPECT_EQ(to_string(CloudError::kTransient), "transient");
  EXPECT_EQ(to_string(CloudError::kNotFound), "not-found");
  EXPECT_TRUE(is_retryable(CloudError::kTransient));
  EXPECT_TRUE(is_retryable(CloudError::kTimeout));
  EXPECT_TRUE(is_retryable(CloudError::kThrottled));
  EXPECT_TRUE(is_retryable(CloudError::kCorrupt));
  EXPECT_FALSE(is_retryable(CloudError::kNotFound));
}

TEST(CloudTransportError, CarriesKeyAndError) {
  const CloudTransportError error("upload", "containers/c1",
                                  CloudError::kTimeout);
  EXPECT_EQ(error.key(), "containers/c1");
  EXPECT_EQ(error.error(), CloudError::kTimeout);
  EXPECT_NE(std::string(error.what()).find("timeout"), std::string::npos);
}

}  // namespace
}  // namespace aadedupe::cloud
