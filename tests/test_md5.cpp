// MD5 conformance tests against the RFC 1321 appendix test suite, plus
// streaming-equivalence property tests.
#include "hash/md5.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/rng.hpp"

namespace aadedupe::hash {
namespace {

struct Md5Vector {
  const char* message;
  const char* digest_hex;
};

// RFC 1321, section A.5.
constexpr Md5Vector kRfc1321Vectors[] = {
    {"", "d41d8cd98f00b204e9800998ecf8427e"},
    {"a", "0cc175b9c0f1b6a831c399e269772661"},
    {"abc", "900150983cd24fb0d6963f7d28e17f72"},
    {"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
    {"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
    {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
     "d174ab98d277d9f5a5611c2c9f419d9f"},
    {"1234567890123456789012345678901234567890123456789012345678901234567890"
     "1234567890",
     "57edf4a22be3c955ac49da2e2107b67a"},
};

class Md5Rfc1321 : public ::testing::TestWithParam<Md5Vector> {};

TEST_P(Md5Rfc1321, MatchesReferenceDigest) {
  const Md5Vector& v = GetParam();
  EXPECT_EQ(Md5::hash(aadedupe::as_bytes(v.message)).hex(), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(Vectors, Md5Rfc1321,
                         ::testing::ValuesIn(kRfc1321Vectors));

TEST(Md5, MillionAs) {
  // Classic extended vector: 10^6 repetitions of 'a'.
  Md5 h;
  const std::string block(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(aadedupe::as_bytes(block));
  EXPECT_EQ(h.finish().hex(), "7707d6ae4e027c70eea2a935c2296f21");
}

TEST(Md5, DigestSizeIs16) {
  EXPECT_EQ(Md5::hash({}).size(), 16u);
}

// Streaming equivalence: hashing a message in arbitrary-size pieces must
// match the one-shot hash.
class Md5Streaming : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Md5Streaming, SplitUpdatesMatchOneShot) {
  const std::size_t piece = GetParam();
  aadedupe::ByteBuffer message(4096 + 17);
  aadedupe::Xoshiro256 rng(99);
  rng.fill(message);

  const Digest expected = Md5::hash(message);
  Md5 h;
  for (std::size_t off = 0; off < message.size(); off += piece) {
    const std::size_t len = std::min(piece, message.size() - off);
    h.update(aadedupe::ConstByteSpan{message.data() + off, len});
  }
  EXPECT_EQ(h.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(PieceSizes, Md5Streaming,
                         ::testing::Values(1, 3, 7, 63, 64, 65, 127, 128,
                                           1000, 4096));

// Boundary-length messages around the 64-byte block and 56-byte padding
// cutover points.
class Md5Lengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Md5Lengths, FinishHandlesPaddingBoundaries) {
  const std::size_t n = GetParam();
  aadedupe::ByteBuffer message(n, std::byte{0x5a});
  const Digest one_shot = Md5::hash(message);
  // Byte-at-a-time must agree — exercises every internal buffer state.
  Md5 h;
  for (std::size_t i = 0; i < n; ++i) {
    h.update(aadedupe::ConstByteSpan{message.data() + i, 1});
  }
  EXPECT_EQ(h.finish(), one_shot);
  EXPECT_EQ(one_shot.size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(PaddingBoundaries, Md5Lengths,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 128));

TEST(Md5, ResetAllowsReuse) {
  Md5 h;
  h.update(aadedupe::as_bytes("abc"));
  const Digest first = h.finish();
  h.reset();
  h.update(aadedupe::as_bytes("abc"));
  EXPECT_EQ(h.finish(), first);
}

TEST(Md5, DifferentMessagesDiffer) {
  EXPECT_NE(Md5::hash(aadedupe::as_bytes("abc")),
            Md5::hash(aadedupe::as_bytes("abd")));
}

}  // namespace
}  // namespace aadedupe::hash
