// Digest value-type tests.
#include "hash/digest.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "hash/md5.hpp"
#include "hash/rabin.hpp"
#include "hash/sha1.hpp"

namespace aadedupe::hash {
namespace {

TEST(Digest, DefaultIsEmpty) {
  const Digest d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.hex(), "");
}

TEST(Digest, ConstructFromBytes) {
  const auto raw = aadedupe::from_hex("0011223344");
  const Digest d{aadedupe::ConstByteSpan{raw}};
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.hex(), "0011223344");
}

TEST(Digest, RejectsOversizedInput) {
  aadedupe::ByteBuffer raw(21);
  EXPECT_THROW(Digest{aadedupe::ConstByteSpan{raw}},
               aadedupe::PreconditionError);
}

TEST(Digest, RejectsEmptyInput) {
  EXPECT_THROW(Digest{aadedupe::ConstByteSpan{}},
               aadedupe::PreconditionError);
}

TEST(Digest, EqualityRequiresSameWidth) {
  // A 12-byte Rabin digest never equals a 16-byte MD5 digest, even if the
  // leading bytes coincide — widths are part of identity.
  const auto short_raw = aadedupe::from_hex("00112233445566778899aabb");
  const auto long_raw = aadedupe::from_hex("00112233445566778899aabbccddeeff");
  const Digest short_d{aadedupe::ConstByteSpan{short_raw}};
  const Digest long_d{aadedupe::ConstByteSpan{long_raw}};
  EXPECT_NE(short_d, long_d);
}

TEST(Digest, OrderingIsLexThenWidth) {
  const Digest a{aadedupe::ConstByteSpan{aadedupe::from_hex("01")}};
  const Digest b{aadedupe::ConstByteSpan{aadedupe::from_hex("02")}};
  const Digest a_long{aadedupe::ConstByteSpan{aadedupe::from_hex("0100")}};
  EXPECT_LT(a, b);
  EXPECT_LT(a, a_long);
  EXPECT_LT(a_long, b);
}

TEST(Digest, Prefix64UsedForHashing) {
  const auto raw = aadedupe::from_hex("0102030405060708ffff");
  const Digest d{aadedupe::ConstByteSpan{raw}};
  EXPECT_EQ(d.prefix64(), 0x0807060504030201ull);  // little-endian load
}

TEST(Digest, HasherWorksInUnorderedSet) {
  std::unordered_set<Digest, Digest::Hasher> set;
  set.insert(Md5::hash(aadedupe::as_bytes("a")));
  set.insert(Md5::hash(aadedupe::as_bytes("b")));
  set.insert(Md5::hash(aadedupe::as_bytes("a")));  // duplicate
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Md5::hash(aadedupe::as_bytes("a"))));
}

TEST(Digest, ThreeHashFamiliesHaveExpectedWidths) {
  const auto data = aadedupe::as_bytes("sample");
  EXPECT_EQ(Rabin96::hash(data).size(), 12u);
  EXPECT_EQ(Md5::hash(data).size(), 16u);
  EXPECT_EQ(Sha1::hash(data).size(), 20u);
}

}  // namespace
}  // namespace aadedupe::hash
