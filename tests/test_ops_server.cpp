// Live ops plane tests: the embedded introspection server serving real
// telemetry during a backup, the HTTP error paths, the stage stall
// watchdog (a deliberately stalled uploader must flip /healthz to
// degraded and leave exactly one flight dump), and the SLO burn-rate
// verdict. All client traffic goes through ops_http_get/ops_http_request
// — raw sockets stay confined to ops_server.cpp (tools/lint.py).
#include "telemetry/ops_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "cloud/cloud_target.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "telemetry/health.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aadedupe {
namespace {

using telemetry::HealthMonitor;
using telemetry::HealthMonitorOptions;
using telemetry::OpsHttpResult;
using telemetry::OpsServer;
using telemetry::Stage;
using telemetry::Telemetry;
using telemetry::TraceSpan;

/// One real backup session observed by a live server: every endpoint
/// must answer 200 with the advertised content type while the context
/// holds the session's data.
TEST(OpsServer, ServesEveryEndpointOverALiveBackup) {
  Telemetry telemetry;
  HealthMonitor health(telemetry);
  cloud::CloudTarget target;
  target.attach_telemetry(&telemetry);
  core::AaDedupeOptions options;
  options.telemetry = &telemetry;
  options.tenant = "t-live";
  core::AaDedupeScheme scheme(target, options);

  dataset::DatasetConfig config;
  config.seed = 23;
  config.session_bytes = 2ull << 20;
  config.max_file_bytes = 1 << 20;
  dataset::DatasetGenerator gen(config);
  scheme.backup(gen.initial());

  OpsServer server;  // port 0: ephemeral
  server.wire_telemetry(telemetry);
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const OpsHttpResult index = telemetry::ops_http_get(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);

  const OpsHttpResult metrics =
      telemetry::ops_http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("aad_session_bytes_logical"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("tenant=\"t-live\""), std::string::npos);

  const OpsHttpResult varz = telemetry::ops_http_get(server.port(), "/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_NE(varz.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(varz.body.find("\"schema\": \"aadedupe-run-report/v1\""),
            std::string::npos);

  const OpsHttpResult healthz =
      telemetry::ops_http_get(server.port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(healthz.body.find("\"upload\""), std::string::npos);

  const OpsHttpResult tracez =
      telemetry::ops_http_get(server.port(), "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"stage\": \"session\""), std::string::npos);
  EXPECT_NE(tracez.body.find("\"recent\""), std::string::npos);

  const OpsHttpResult flightz =
      telemetry::ops_http_get(server.port(), "/flightz");
  EXPECT_EQ(flightz.status, 200);
  EXPECT_NE(flightz.content_type.find("application/json"), std::string::npos);

  // Query strings are tolerated; unknown paths are 404.
  EXPECT_EQ(telemetry::ops_http_get(server.port(), "/healthz?verbose=1")
                .status,
            200);
  EXPECT_EQ(telemetry::ops_http_get(server.port(), "/nope").status, 404);

  EXPECT_GE(server.requests_served(), 8u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(OpsServer, RejectsNonGetOversizedAndMalformedRequests) {
  Telemetry telemetry;
  OpsServer server;
  server.wire_telemetry(telemetry);
  server.start();

  const OpsHttpResult post = telemetry::ops_http_request(
      server.port(),
      "POST /metrics HTTP/1.0\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(post.status, 405);

  const std::string huge_path(8192, 'a');
  const OpsHttpResult oversized = telemetry::ops_http_request(
      server.port(),
      "GET /" + huge_path + " HTTP/1.0\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(oversized.status, 431);

  const OpsHttpResult malformed = telemetry::ops_http_request(
      server.port(), "garbage\r\n\r\n");
  EXPECT_EQ(malformed.status, 404);
}

TEST(OpsServer, HandlerExceptionBecomes500) {
  OpsServer server;
  server.set_handler("/boom", []() -> telemetry::OpsResponse {
    throw FormatError("deliberate");
  });
  server.start();
  const OpsHttpResult boom = telemetry::ops_http_get(server.port(), "/boom");
  EXPECT_EQ(boom.status, 500);
}

/// The acceptance scenario: an uploader whose span sits open making no
/// progress past the deadline flips /healthz to degraded and fires
/// exactly one flight dump; renewed activity recovers the verdict and
/// the dump count stays at one.
TEST(OpsServer, StalledUploadDegradesHealthzAndDumpsOnce) {
  // Atomic: the listener thread reads the clock while the test advances it.
  std::atomic<double> fake_now{0.0};
  Telemetry telemetry(
      [&fake_now] { return fake_now.load(std::memory_order_relaxed); });
  HealthMonitorOptions options;
  options.default_stall_deadline_s = 5.0;
  options.flight_dump_min_interval_s = 1000.0;
  HealthMonitor health(telemetry, options);

  OpsServer server;
  server.wire_telemetry(telemetry);
  server.start();

  {
    // The deliberately stalled uploader: a kUpload span held open with
    // no heartbeat while the clock runs past the deadline.
    TraceSpan upload(&telemetry.trace, Stage::kUpload, "stalled");
    fake_now = 10.0;
    health.tick(fake_now);
    EXPECT_TRUE(health.any_stage_stalled());
    EXPECT_EQ(health.stall_dump_count(), 1u);

    const HealthMonitor::Verdict degraded = health.verdict();
    ASSERT_TRUE(degraded.degraded);
    ASSERT_EQ(degraded.reasons.size(), 1u);
    EXPECT_NE(degraded.reasons[0].find("upload"), std::string::npos);

    // The endpoint mirrors the verdict as 503 with a JSON body.
    const OpsHttpResult healthz =
        telemetry::ops_http_get(server.port(), "/healthz");
    EXPECT_EQ(healthz.status, 503);
    EXPECT_NE(healthz.body.find("\"status\": \"degraded\""),
              std::string::npos);
    EXPECT_NE(healthz.body.find("stage upload stalled"), std::string::npos);

    // A stall is an edge, not a level: further ticks must not dump again.
    fake_now = 20.0;
    health.tick(fake_now);
    fake_now = 30.0;
    health.tick(fake_now);
    EXPECT_EQ(health.stall_dump_count(), 1u);

    // Progress (the retry ladder's per-attempt heartbeat) recovers it.
    health.heartbeat(Stage::kUpload);
    health.tick(fake_now);
    EXPECT_FALSE(health.any_stage_stalled());
    EXPECT_FALSE(health.verdict().degraded);
    EXPECT_EQ(telemetry::ops_http_get(server.port(), "/healthz").status,
              200);
    EXPECT_EQ(health.stall_dump_count(), 1u);
  }
}

TEST(OpsServer, SloFastBurnDegradesAndRecovers) {
  double fake_now = 0.0;
  Telemetry telemetry([&fake_now] { return fake_now; });
  HealthMonitorOptions options;
  options.slo.backup_window_s = 60.0;  // sessions must finish within 60s
  options.error_budget = 0.10;
  options.fast_burn_alert = 2.0;
  HealthMonitor health(telemetry, options);

  // Ten compliant sessions: burn rate 0, healthy.
  for (int i = 0; i < 10; ++i) {
    fake_now += 1.0;
    health.record_session("acme", 30.0, 1e6);
  }
  EXPECT_FALSE(health.verdict().degraded);

  // Ten violating sessions inside the fast window: violation fraction
  // 0.5, burn 0.5/0.1 = 5 >= 2 -> degraded, naming the tenant.
  for (int i = 0; i < 10; ++i) {
    fake_now += 1.0;
    health.record_session("acme", 120.0, 1e6);
  }
  const HealthMonitor::Verdict burning = health.verdict();
  ASSERT_TRUE(burning.degraded);
  EXPECT_NE(burning.reasons[0].find("acme"), std::string::npos);
  EXPECT_NE(burning.reasons[0].find("fast SLO burn"), std::string::npos);

  // Once the violations age out of the fast window, the verdict heals
  // (the slow burn still reports them, but does not alert).
  fake_now += options.fast_window_s + 1.0;
  for (int i = 0; i < 10; ++i) {
    fake_now += 1.0;
    health.record_session("acme", 30.0, 1e6);
  }
  EXPECT_FALSE(health.verdict().degraded);

  // A disabled objective (zero threshold) never violates.
  Telemetry plain;
  HealthMonitor relaxed(plain);
  relaxed.record_session("acme", 1e9, 0.0);
  EXPECT_FALSE(relaxed.verdict().degraded);
}

TEST(OpsServer, BytesSavedRateObjectiveViolates) {
  double fake_now = 0.0;
  Telemetry telemetry([&fake_now] { return fake_now; });
  HealthMonitorOptions options;
  options.slo.bytes_saved_per_s = 1e6;  // DE floor
  HealthMonitor health(telemetry, options);
  for (int i = 0; i < 10; ++i) {
    fake_now += 1.0;
    health.record_session("", 10.0, 1e3);  // far below the floor
  }
  const HealthMonitor::Verdict v = health.verdict();
  ASSERT_TRUE(v.degraded);
  // The empty tenant renders as "default" in reasons and JSON.
  EXPECT_NE(v.reasons[0].find("default"), std::string::npos);
}

}  // namespace
}  // namespace aadedupe
