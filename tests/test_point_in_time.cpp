// Point-in-time restore tests: AA-Dedupe keeps per-session recipes, so
// any retained weekly state can be reassembled — including old versions
// of since-modified files and since-deleted files.
#include <gtest/gtest.h>

#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe::core {
namespace {

dataset::DatasetConfig pit_config() {
  dataset::DatasetConfig config;
  config.seed = 61;
  config.session_bytes = 4ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(PointInTime, SessionsAreListed) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(pit_config());
  const auto sessions = gen.sessions(3);
  for (const auto& s : sessions) scheme.backup(s);
  EXPECT_EQ(scheme.restorable_sessions(),
            (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(PointInTime, OldVersionsOfModifiedFilesRestore) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(pit_config());
  const auto sessions = gen.sessions(4);
  for (const auto& s : sessions) scheme.backup(s);

  // Find files whose content changed between session 0 and session 3.
  std::map<std::string, const dataset::FileEntry*> old_files;
  for (const auto& f : sessions[0].files) old_files.emplace(f.path, &f);

  std::size_t verified_changed = 0;
  for (const auto& current : sessions[3].files) {
    const auto it = old_files.find(current.path);
    if (it == old_files.end()) continue;
    const dataset::FileEntry& original = *it->second;
    if (original.content == current.content) continue;

    // Both the old and the new version must restore from their sessions.
    EXPECT_EQ(scheme.restore_file_at(current.path, 0),
              dataset::materialize(original.content))
        << current.path;
    EXPECT_EQ(scheme.restore_file_at(current.path, 3),
              dataset::materialize(current.content))
        << current.path;
    if (++verified_changed >= 5) break;
  }
  EXPECT_GT(verified_changed, 0u) << "workload produced no modified files";
}

TEST(PointInTime, DeletedFilesRestoreFromOldSessions) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(pit_config());
  const auto sessions = gen.sessions(4);
  for (const auto& s : sessions) scheme.backup(s);

  std::set<std::string> final_paths;
  for (const auto& f : sessions[3].files) final_paths.insert(f.path);

  std::size_t verified_deleted = 0;
  for (const auto& f : sessions[0].files) {
    if (final_paths.contains(f.path)) continue;
    // Gone from the latest snapshot...
    EXPECT_THROW(scheme.restore_file(f.path), FormatError);
    // ...but restorable from its own session.
    EXPECT_EQ(scheme.restore_file_at(f.path, 0),
              dataset::materialize(f.content))
        << f.path;
    if (++verified_deleted >= 3) break;
  }
  EXPECT_GT(verified_deleted, 0u) << "workload produced no deletions";
}

TEST(PointInTime, UnknownSessionThrows) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(pit_config());
  scheme.backup(gen.initial());
  EXPECT_THROW(scheme.restore_file_at("avi/f000001.avi", 7), FormatError);
}

TEST(PointInTime, ExpiredSessionThrowsAfterGc) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(pit_config());
  const auto sessions = gen.sessions(3);
  for (const auto& s : sessions) scheme.backup(s);

  scheme.collect_garbage(1);
  EXPECT_EQ(scheme.restorable_sessions(), (std::vector<std::uint32_t>{2}));
  EXPECT_THROW(
      scheme.restore_file_at(sessions[0].files[0].path, 0), FormatError);
  // The retained session still restores.
  const auto& f = sessions[2].files.front();
  EXPECT_EQ(scheme.restore_file_at(f.path, 2),
            dataset::materialize(f.content));
}

TEST(PointInTime, RetainedMiddleSessionSurvivesGcRewrites) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(pit_config());
  const auto sessions = gen.sessions(4);
  for (const auto& s : sessions) scheme.backup(s);

  GcOptions opts;
  opts.rewrite_threshold = 0.95;
  scheme.collect_garbage(2, opts);  // keep sessions 2 and 3

  for (std::size_t i = 0; i < sessions[2].files.size();
       i += (i + 13 < sessions[2].files.size() ? std::size_t{13} : std::size_t{1})) {
    const auto& f = sessions[2].files[i];
    ASSERT_EQ(scheme.restore_file_at(f.path, 2),
              dataset::materialize(f.content))
        << f.path;
  }
}

}  // namespace
}  // namespace aadedupe::core
