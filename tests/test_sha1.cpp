// SHA-1 conformance tests against RFC 3174 / FIPS 180 vectors, plus
// streaming-equivalence property tests.
#include "hash/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace aadedupe::hash {
namespace {

struct Sha1Vector {
  const char* message;
  const char* digest_hex;
};

constexpr Sha1Vector kVectors[] = {
    {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
    {"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
    {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
    {"The quick brown fox jumps over the lazy dog",
     "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
    {"a", "86f7e437faa5a7fce15d1ddcb9eaeaea377667b8"},
    {"0123456701234567012345670123456701234567012345670123456701234567",
     "e0c094e867ef46c350ef54a7f59dd60bed92ae83"},
};

class Sha1Conformance : public ::testing::TestWithParam<Sha1Vector> {};

TEST_P(Sha1Conformance, MatchesReferenceDigest) {
  const Sha1Vector& v = GetParam();
  EXPECT_EQ(Sha1::hash(aadedupe::as_bytes(v.message)).hex(), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(Vectors, Sha1Conformance,
                         ::testing::ValuesIn(kVectors));

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string block(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(aadedupe::as_bytes(block));
  EXPECT_EQ(h.finish().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, DigestSizeIs20) {
  EXPECT_EQ(Sha1::hash({}).size(), 20u);
}

class Sha1Streaming : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha1Streaming, SplitUpdatesMatchOneShot) {
  const std::size_t piece = GetParam();
  aadedupe::ByteBuffer message(8192 + 31);
  aadedupe::Xoshiro256 rng(7);
  rng.fill(message);

  const Digest expected = Sha1::hash(message);
  Sha1 h;
  for (std::size_t off = 0; off < message.size(); off += piece) {
    const std::size_t len = std::min(piece, message.size() - off);
    h.update(aadedupe::ConstByteSpan{message.data() + off, len});
  }
  EXPECT_EQ(h.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(PieceSizes, Sha1Streaming,
                         ::testing::Values(1, 2, 19, 63, 64, 65, 512, 8192));

class Sha1Lengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha1Lengths, FinishHandlesPaddingBoundaries) {
  const std::size_t n = GetParam();
  aadedupe::ByteBuffer message(n, std::byte{0xa5});
  const Digest one_shot = Sha1::hash(message);
  Sha1 h;
  for (std::size_t i = 0; i < n; ++i) {
    h.update(aadedupe::ConstByteSpan{message.data() + i, 1});
  }
  EXPECT_EQ(h.finish(), one_shot);
}

INSTANTIATE_TEST_SUITE_P(PaddingBoundaries, Sha1Lengths,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 128));

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update(aadedupe::as_bytes("xyz"));
  const Digest first = h.finish();
  h.reset();
  h.update(aadedupe::as_bytes("xyz"));
  EXPECT_EQ(h.finish(), first);
}

TEST(Sha1, DiffersFromMd5Width) {
  EXPECT_NE(Sha1::hash(aadedupe::as_bytes("abc")).size(), 16u);
}

}  // namespace
}  // namespace aadedupe::hash
