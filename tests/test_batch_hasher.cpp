// Batched fingerprint engine: RFC known-answer vectors against every
// compiled lane width, plus randomized batch-vs-scalar differentials over
// uneven chunk lengths. These suites are what lets the dispatch ladder swap
// rungs per machine without dedup metrics ever depending on the hardware.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "hash/batch_hasher.hpp"
#include "hash/cpu_features.hpp"
#include "hash/hash_kind.hpp"
#include "hash/md5.hpp"
#include "hash/sha1.hpp"
#include "util/bytes.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aadedupe::hash {
namespace {

struct Kat {
  std::string message;
  std::string_view hex;
};

// RFC 3174 test vectors (1 & 2, plus the long repetition cases) and the
// classic million-'a' vector from FIPS 180 validation suites.
std::vector<Kat> sha1_vectors() {
  std::vector<Kat> v = {
      {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
      {"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
      {std::string(1000000, 'a'), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"},
  };
  // RFC 3174 TEST3: the 64-char "01234567..." block repeated 10 times.
  std::string rep;
  for (int i = 0; i < 10; ++i) {
    rep +=
        "0123456701234567012345670123456701234567012345670123456701234567";
  }
  v.push_back({rep, "dea356a2cddd90c7a7ecedc5ebb563934f460452"});
  return v;
}

// RFC 1321 appendix A.5 test suite, complete.
std::vector<Kat> md5_vectors() {
  return {
      {"", "d41d8cd98f00b204e9800998ecf8427e"},
      {"a", "0cc175b9c0f1b6a831c399e269772661"},
      {"abc", "900150983cd24fb0d6963f7d28e17f72"},
      {"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
      {"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
      {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
       "d174ab98d277d9f5a5611c2c9f419d9f"},
      {"123456789012345678901234567890123456789012345678901234567890123456"
       "78901234567890",
       "57edf4a22be3c955ac49da2e2107b67a"},
  };
}

// Lengths that straddle every padding boundary: the 55/56 one-vs-two tail
// block split, exact block multiples, and a 1 MiB chunk to stress the full-
// block fast path. (The ±1 around 64 and 128 catch cursor off-by-ones.)
std::vector<std::size_t> boundary_lengths() {
  return {0,   1,   3,   55,  56,  57,   63,   64,   65,   119,  120,
          121, 127, 128, 129, 447, 1000, 4096, 8191, 8192, 65536, 1u << 20};
}

ByteBuffer random_buffer(std::size_t size, std::uint64_t seed) {
  ByteBuffer buf(size);
  Xoshiro256 rng(seed);
  rng.fill(buf);
  return buf;
}

std::vector<ConstByteSpan> views_of(const std::vector<ByteBuffer>& buffers) {
  std::vector<ConstByteSpan> views;
  views.reserve(buffers.size());
  for (const ByteBuffer& b : buffers) views.emplace_back(b);
  return views;
}

TEST(CpuFeaturesTest, DisableFlagParser) {
  EXPECT_FALSE(parse_simd_disable_flag(nullptr));
  EXPECT_FALSE(parse_simd_disable_flag(""));
  EXPECT_FALSE(parse_simd_disable_flag("0"));
  EXPECT_FALSE(parse_simd_disable_flag("false"));
  EXPECT_FALSE(parse_simd_disable_flag("no"));
  EXPECT_FALSE(parse_simd_disable_flag("off"));
  EXPECT_FALSE(parse_simd_disable_flag("2"));
  EXPECT_FALSE(parse_simd_disable_flag("disable"));
  EXPECT_TRUE(parse_simd_disable_flag("1"));
  EXPECT_TRUE(parse_simd_disable_flag("true"));
  EXPECT_TRUE(parse_simd_disable_flag("TRUE"));
  EXPECT_TRUE(parse_simd_disable_flag("yes"));
  EXPECT_TRUE(parse_simd_disable_flag("on"));
  EXPECT_TRUE(parse_simd_disable_flag("On"));
}

TEST(BatchHasherTest, ScalarRungsAlwaysSupported) {
  const auto sha1 = BatchHasher::supported_sha1_impls();
  const auto md5 = BatchHasher::supported_md5_impls();
  ASSERT_FALSE(sha1.empty());
  ASSERT_FALSE(md5.empty());
  EXPECT_EQ(sha1.front(), Sha1Impl::kScalar);
  EXPECT_EQ(md5.front(), Md5Impl::kScalar);
}

TEST(BatchHasherTest, DefaultPicksStrongestSupportedRung) {
  const BatchHasher hasher;
  EXPECT_EQ(hasher.sha1_impl(), BatchHasher::supported_sha1_impls().back());
  EXPECT_EQ(hasher.md5_impl(), BatchHasher::supported_md5_impls().back());
  EXPECT_FALSE(hasher.impl_tag(HashKind::kSha1).empty());
  EXPECT_EQ(hasher.impl_tag(HashKind::kRabin96), "scalar");
}

// Every compiled SHA-1 rung must reproduce the RFC 3174 vectors — each
// vector alone (exercising partially-filled lanes) and all of them as one
// batch (exercising lane refill across very unequal lengths).
TEST(BatchHasherTest, Sha1KnownAnswersOnEveryRung) {
  const auto vectors = sha1_vectors();
  std::vector<ByteBuffer> buffers;
  for (const Kat& kat : vectors) buffers.push_back(to_buffer(kat.message));
  const auto views = views_of(buffers);

  for (Sha1Impl impl : BatchHasher::supported_sha1_impls()) {
    SCOPED_TRACE(std::string("impl=") += to_string(impl));
    const BatchHasher hasher(impl, Md5Impl::kScalar);
    std::vector<Digest> out;
    for (std::size_t i = 0; i < views.size(); ++i) {
      hasher.hash_batch(HashKind::kSha1, {&views[i], 1}, out);
      EXPECT_EQ(out[0].hex(), vectors[i].hex) << "vector " << i;
    }
    hasher.hash_batch(HashKind::kSha1, views, out);
    ASSERT_EQ(out.size(), vectors.size());
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      EXPECT_EQ(out[i].hex(), vectors[i].hex) << "batched vector " << i;
    }
  }
}

TEST(BatchHasherTest, Md5KnownAnswersOnEveryRung) {
  const auto vectors = md5_vectors();
  std::vector<ByteBuffer> buffers;
  for (const Kat& kat : vectors) buffers.push_back(to_buffer(kat.message));
  const auto views = views_of(buffers);

  for (Md5Impl impl : BatchHasher::supported_md5_impls()) {
    SCOPED_TRACE(std::string("impl=") += to_string(impl));
    const BatchHasher hasher(Sha1Impl::kScalar, impl);
    std::vector<Digest> out;
    for (std::size_t i = 0; i < views.size(); ++i) {
      hasher.hash_batch(HashKind::kMd5, {&views[i], 1}, out);
      EXPECT_EQ(out[0].hex(), vectors[i].hex) << "vector " << i;
    }
    hasher.hash_batch(HashKind::kMd5, views, out);
    ASSERT_EQ(out.size(), vectors.size());
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      EXPECT_EQ(out[i].hex(), vectors[i].hex) << "batched vector " << i;
    }
  }
}

// One batch holding every padding-boundary length at once: 0, 1, 55, 56,
// 64, 65, ... 1 MiB. Batch results must match the scalar reference bit for
// bit on every rung.
TEST(BatchHasherTest, PaddingBoundaryBatchMatchesScalar) {
  std::vector<ByteBuffer> buffers;
  std::uint64_t seed = 0x5eed;
  for (std::size_t len : boundary_lengths()) {
    buffers.push_back(random_buffer(len, seed++));
  }
  const auto views = views_of(buffers);

  std::vector<Digest> expect_sha1;
  std::vector<Digest> expect_md5;
  for (const auto& v : views) {
    expect_sha1.push_back(Sha1::hash(v));
    expect_md5.push_back(Md5::hash(v));
  }

  std::vector<Digest> out;
  for (Sha1Impl impl : BatchHasher::supported_sha1_impls()) {
    SCOPED_TRACE(std::string("sha1 impl=") += to_string(impl));
    BatchHasher(impl, Md5Impl::kScalar)
        .hash_batch(HashKind::kSha1, views, out);
    ASSERT_EQ(out.size(), views.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
      EXPECT_EQ(out[i], expect_sha1[i]) << "len=" << views[i].size();
    }
  }
  for (Md5Impl impl : BatchHasher::supported_md5_impls()) {
    SCOPED_TRACE(std::string("md5 impl=") += to_string(impl));
    BatchHasher(Sha1Impl::kScalar, impl)
        .hash_batch(HashKind::kMd5, views, out);
    ASSERT_EQ(out.size(), views.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
      EXPECT_EQ(out[i], expect_md5[i]) << "len=" << views[i].size();
    }
  }
}

// Randomized differential: many batches of random count x random uneven
// lengths, every rung vs the scalar reference. Catches lane-refill and
// masked-update bugs that fixed vectors cannot.
TEST(BatchHasherTest, RandomizedDifferentialBatchVsScalar) {
  Xoshiro256 rng(20260809);
  const auto sha1_impls = BatchHasher::supported_sha1_impls();
  const auto md5_impls = BatchHasher::supported_md5_impls();

  for (int round = 0; round < 40; ++round) {
    const std::size_t count = rng.next() % 23;  // includes empty batches
    std::vector<ByteBuffer> buffers;
    for (std::size_t i = 0; i < count; ++i) {
      // Mix tiny, block-boundary-ish, and multi-block sizes.
      const std::uint64_t pick = rng.next();
      std::size_t len;
      if (pick % 3 == 0) {
        len = pick % 70;
      } else if (pick % 3 == 1) {
        len = 64 * (pick % 32) + (rng.next() % 3);
      } else {
        len = pick % 20000;
      }
      buffers.push_back(random_buffer(len, rng.next()));
    }
    const auto views = views_of(buffers);

    std::vector<Digest> expect_sha1;
    std::vector<Digest> expect_md5;
    for (const auto& v : views) {
      expect_sha1.push_back(Sha1::hash(v));
      expect_md5.push_back(Md5::hash(v));
    }

    std::vector<Digest> out;
    for (Sha1Impl impl : sha1_impls) {
      BatchHasher(impl, Md5Impl::kScalar)
          .hash_batch(HashKind::kSha1, views, out);
      ASSERT_EQ(out.size(), views.size());
      for (std::size_t i = 0; i < views.size(); ++i) {
        ASSERT_EQ(out[i], expect_sha1[i])
            << "round " << round << " sha1 " << to_string(impl) << " chunk "
            << i << " len " << views[i].size();
      }
    }
    for (Md5Impl impl : md5_impls) {
      BatchHasher(Sha1Impl::kScalar, impl)
          .hash_batch(HashKind::kMd5, views, out);
      ASSERT_EQ(out.size(), views.size());
      for (std::size_t i = 0; i < views.size(); ++i) {
        ASSERT_EQ(out[i], expect_md5[i])
            << "round " << round << " md5 " << to_string(impl) << " chunk "
            << i << " len " << views[i].size();
      }
    }
  }
}

TEST(BatchHasherTest, Rabin96BatchMatchesScalarReference) {
  std::vector<ByteBuffer> buffers;
  for (std::size_t len : {std::size_t{0}, std::size_t{12}, std::size_t{100},
                          std::size_t{4096}}) {
    buffers.push_back(random_buffer(len, 99 + len));
  }
  const auto views = views_of(buffers);
  std::vector<Digest> out;
  default_batch_hasher().hash_batch(HashKind::kRabin96, views, out);
  ASSERT_EQ(out.size(), views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(out[i], compute_digest(HashKind::kRabin96, views[i]));
  }
}

TEST(BatchHasherTest, HashOneMatchesComputeDigest) {
  const ByteBuffer data = random_buffer(12345, 7);
  const BatchHasher& hasher = default_batch_hasher();
  EXPECT_EQ(hasher.hash_one(HashKind::kSha1, data),
            compute_digest(HashKind::kSha1, data));
  EXPECT_EQ(hasher.hash_one(HashKind::kMd5, data),
            compute_digest(HashKind::kMd5, data));
  EXPECT_EQ(hasher.hash_one(HashKind::kRabin96, data),
            compute_digest(HashKind::kRabin96, data));
}

TEST(BatchHasherTest, EmptyBatchIsANoOp) {
  std::vector<Digest> out(3);
  default_batch_hasher().hash_batch(HashKind::kSha1, {}, out);
  EXPECT_TRUE(out.empty());
}

TEST(BatchHasherTest, UnsupportedPinnedRungThrows) {
  // Find a rung the current build/CPU does NOT support, if any.
  const auto supported = BatchHasher::supported_sha1_impls();
  for (Sha1Impl impl : {Sha1Impl::kSse2x4, Sha1Impl::kAvx2x8,
                        Sha1Impl::kShaNi}) {
    bool is_supported = false;
    for (Sha1Impl s : supported) is_supported |= (s == impl);
    if (!is_supported) {
      EXPECT_THROW(BatchHasher(impl, Md5Impl::kScalar), PreconditionError);
      return;
    }
  }
  GTEST_SKIP() << "every rung supported on this build/CPU";
}

}  // namespace
}  // namespace aadedupe::hash
