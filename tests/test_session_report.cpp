// SessionReport derived-metric tests (the Table II quantities as exposed
// by the scheme framework).
#include <gtest/gtest.h>

#include "backup/scheme.hpp"

namespace aadedupe::backup {
namespace {

SessionReport sample_report() {
  SessionReport r;
  r.scheme = "test";
  r.session = 3;
  r.dataset_bytes = 10'000'000;
  r.dataset_files = 100;
  r.transferred_bytes = 2'500'000;
  r.upload_requests = 10;
  r.cumulative_stored_bytes = 5'000'000;
  r.dedupe_seconds = 2.0;
  r.cpu_seconds = 1.5;
  r.transfer_seconds = 5.0;
  return r;
}

TEST(SessionReport, DedupeRatioIsBeforeOverAfter) {
  EXPECT_DOUBLE_EQ(sample_report().dedupe_ratio(), 4.0);
}

TEST(SessionReport, ThroughputIsDatasetOverDedupeTime) {
  EXPECT_DOUBLE_EQ(sample_report().dedupe_throughput(), 5'000'000.0);
}

TEST(SessionReport, BytesSavedPerSecondFollowsPaperFormula) {
  // DE = (1 - 1/DR) * DT = 0.75 * 5 MB/s.
  EXPECT_DOUBLE_EQ(sample_report().bytes_saved_per_second(), 3'750'000.0);
}

TEST(SessionReport, BackupWindowIsSlowerPipelineStage) {
  SessionReport r = sample_report();
  EXPECT_DOUBLE_EQ(r.backup_window_seconds(), 5.0);  // transfer-bound
  r.dedupe_seconds = 9.0;
  EXPECT_DOUBLE_EQ(r.backup_window_seconds(), 9.0);  // compute-bound
}

TEST(SessionReport, EnergyCoversDedupePhase) {
  const metrics::EnergyModel model{10.0, 20.0};
  // E = 10 W * 2 s (dedup wall) + 20 W * 1.5 s (cpu) = 50 J — the WAN
  // transfer time is deliberately not charged (Fig. 11 measures the
  // deduplication process).
  EXPECT_DOUBLE_EQ(sample_report().energy_joules(model), 50.0);
}

TEST(SessionReport, NoDedupMeansZeroSavings) {
  SessionReport r = sample_report();
  r.transferred_bytes = r.dataset_bytes;
  EXPECT_DOUBLE_EQ(r.dedupe_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(r.bytes_saved_per_second(), 0.0);
}

TEST(SessionReport, ExpandedTransferReportsHonestRatioButClampsSavings) {
  // A scheme can ship MORE than the logical bytes (framing overhead).
  // dedupe_ratio() reports the raw ratio honestly; the savings metric
  // clamps at zero instead of going negative or throwing.
  SessionReport r = sample_report();
  r.transferred_bytes = r.dataset_bytes + 1000;
  EXPECT_LT(r.dedupe_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(r.bytes_saved_per_second(), 0.0);
}

}  // namespace
}  // namespace aadedupe::backup
