// RunReport tests: schema/build stamping, file output, and whole-session
// invariants over a real AA-Dedupe backup with telemetry attached.
#include "telemetry/run_report.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>

#include "backup/scheme.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aadedupe {
namespace {

namespace fs = std::filesystem;

TEST(RunReport, StampsSchemaAndBuildMetadata) {
  telemetry::RunReport report;
  const telemetry::JsonValue* schema = report.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), telemetry::RunReport::kSchema);

  const telemetry::JsonValue* build = report.find("build");
  ASSERT_NE(build, nullptr);
  ASSERT_TRUE(build->is_object());
  for (const char* key : {"compiler", "flags", "build_type", "sanitizer",
                          "preset", "hardware_threads"}) {
    EXPECT_NE(build->find(key), nullptr) << "missing build." << key;
  }
}

TEST(RunReport, WriteFileRoundTripsAndBadPathThrows) {
  telemetry::RunReport report;
  report.section("demo")["answer"] = 42u;

  const fs::path path = fs::temp_directory_path() / "aad_run_report_test.json";
  report.write_file(path.string());
  ASSERT_TRUE(fs::exists(path));
  EXPECT_GT(fs::file_size(path), 0u);
  fs::remove(path);

  EXPECT_THROW(report.write_file("/nonexistent-dir/report.json"), FormatError);
}

/// One real backup session with a Telemetry context attached end to end;
/// the assembled report must satisfy the cross-section invariants.
class RunReportSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::AaDedupeOptions options;
    options.telemetry = &telemetry_;
    scheme_ = std::make_unique<core::AaDedupeScheme>(target_, options);

    dataset::DatasetConfig config;
    config.seed = 17;
    config.session_bytes = 4ull << 20;
    config.max_file_bytes = 1 << 20;
    dataset::DatasetGenerator gen(config);
    snapshot_ = gen.initial();
    session_report_ = scheme_->backup(snapshot_);

    report_.add_telemetry(telemetry_);
    scheme_->fill_run_report(report_);
    target_.fill_run_report(report_);
    backup::fill_run_report(session_report_, report_);
  }

  const telemetry::JsonValue& get(const telemetry::JsonValue& obj,
                                  std::string_view key) {
    const telemetry::JsonValue* value = obj.find(key);
    AAD_EXPECTS(value != nullptr);
    return *value;
  }

  telemetry::Telemetry telemetry_;
  cloud::CloudTarget target_;
  std::unique_ptr<core::AaDedupeScheme> scheme_;
  dataset::Snapshot snapshot_;
  backup::SessionReport session_report_;
  telemetry::RunReport report_;
};

TEST_F(RunReportSessionTest, SessionBytesMatchDatasetAndPerCategorySum) {
  const telemetry::JsonValue& session = get(report_.root(), "session");
  // Logical bytes in == dataset bytes == sum of per-application bytes.
  EXPECT_EQ(get(session, "session_bytes").as_uint(), snapshot_.total_bytes());
  EXPECT_EQ(get(session, "session_files").as_uint(), snapshot_.file_count());

  std::uint64_t app_bytes = 0, app_files = 0, app_new_bytes = 0;
  for (const telemetry::JsonValue& app :
       get(session, "applications").array_items()) {
    app_bytes += get(app, "session_bytes").as_uint();
    app_files += get(app, "session_files").as_uint();
    app_new_bytes += get(app, "session_new_bytes").as_uint();
    EXPECT_GE(get(app, "dedup_ratio").as_double(), 0.0);
  }
  EXPECT_EQ(app_bytes, snapshot_.total_bytes());
  EXPECT_EQ(app_files, snapshot_.file_count());
  EXPECT_EQ(app_new_bytes, get(session, "session_new_bytes").as_uint());
  // Dedup never inflates: shipped container bytes <= logical bytes.
  EXPECT_LE(app_new_bytes, app_bytes);
  EXPECT_GT(app_new_bytes, 0u);
}

TEST_F(RunReportSessionTest, MetricsCountersAgreeWithSessionSection) {
  const telemetry::JsonValue& metrics = get(report_.root(), "metrics");
  const telemetry::JsonValue& session = get(report_.root(), "session");
  EXPECT_EQ(get(metrics, "session.files").as_uint(),
            get(session, "session_files").as_uint());
  EXPECT_EQ(get(metrics, "session.bytes_logical").as_uint(),
            get(session, "session_bytes").as_uint());
  EXPECT_EQ(get(metrics, "session.chunks").as_uint(),
            get(session, "session_chunks").as_uint());
  // Containers shipped and their bytes are live counters mirroring the
  // per-category new-bytes total (containers are the only chunk payload).
  EXPECT_GT(get(metrics, "container.shipped").as_uint(), 0u);
  EXPECT_EQ(get(metrics, "container.bytes").as_uint(),
            get(session, "session_new_bytes").as_uint());
}

TEST_F(RunReportSessionTest, UploadBytesMatchStoreReceivedBytes) {
  const telemetry::JsonValue& cloud = get(report_.root(), "cloud");
  const telemetry::JsonValue& store = get(cloud, "store");
  const telemetry::JsonValue& session_report =
      get(report_.root(), "session_report");
  // Fresh target: everything the store received was uploaded this session.
  EXPECT_EQ(get(store, "bytes_uploaded").as_uint(),
            get(session_report, "transferred_bytes").as_uint());
  EXPECT_EQ(get(store, "put_requests").as_uint(),
            get(session_report, "upload_requests").as_uint());
  EXPECT_GT(get(store, "bytes_uploaded").as_uint(), 0u);
  // Container payloads are a subset of what was shipped (metadata rides
  // along), so store bytes dominate session_new_bytes.
  const telemetry::JsonValue& session = get(report_.root(), "session");
  EXPECT_GE(get(store, "bytes_uploaded").as_uint(),
            get(session, "session_new_bytes").as_uint());
}

TEST_F(RunReportSessionTest, StagesCoverThePipeline) {
  const telemetry::JsonValue& stages = get(report_.root(), "stages");
  std::set<std::string> seen;
  for (const telemetry::JsonValue& row : stages.array_items()) {
    seen.insert(get(row, "stage").as_string());
    EXPECT_GE(get(row, "wall_s").as_double(), 0.0);
    EXPECT_GE(get(row, "self_s").as_double(), 0.0);
    // Self time never exceeds total (per row, post-aggregation).
    EXPECT_LE(get(row, "self_s").as_double(),
              get(row, "wall_s").as_double() + 1e-9);
  }
  for (const char* stage : {"session", "classify", "chunk", "fingerprint",
                            "index_lookup", "container_pack", "upload",
                            "metadata_sync"}) {
    EXPECT_TRUE(seen.contains(stage)) << "missing stage " << stage;
  }
}

TEST_F(RunReportSessionTest, PipelineAndJournalSectionsAreCoherent) {
  const telemetry::JsonValue& session = get(report_.root(), "session");
  const telemetry::JsonValue& pipeline = get(session, "pipeline");
  EXPECT_GT(get(pipeline, "enqueued").as_uint(), 0u);
  EXPECT_EQ(get(pipeline, "uploaded").as_uint(),
            get(pipeline, "enqueued").as_uint());
  EXPECT_EQ(get(pipeline, "failed").as_uint(), 0u);
  const telemetry::JsonValue& journal = get(session, "journal");
  EXPECT_EQ(get(journal, "pending_items").as_uint(), 0u);
  EXPECT_EQ(get(journal, "pending_bytes").as_uint(), 0u);
}

TEST_F(RunReportSessionTest, ReportSerializesToNonTrivialJson) {
  const std::string json = report_.to_json();
  EXPECT_GT(json.size(), 500u);
  EXPECT_EQ(json.front(), '{');
  // Every contributed section survives serialization.
  for (const char* key : {"\"schema\"", "\"build\"", "\"metrics\"",
                          "\"stages\"", "\"session\"", "\"cloud\"",
                          "\"session_report\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace aadedupe
