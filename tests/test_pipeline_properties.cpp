// Whole-pipeline property tests, parameterized over dataset seeds: the
// invariants that must hold for ANY workload, not just the default one.
#include <gtest/gtest.h>

#include <numeric>

#include "backup/chunk_level.hpp"
#include "backup/file_level.hpp"
#include "backup/keys.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe {
namespace {

dataset::DatasetConfig seeded_config(std::uint64_t seed) {
  dataset::DatasetConfig config;
  config.seed = seed;
  config.session_bytes = 4ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, AaBackupRestoreIdentityAcrossSeeds) {
  cloud::CloudTarget target;
  core::AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(seeded_config(GetParam()));
  const auto sessions = gen.sessions(2);
  for (const auto& s : sessions) scheme.backup(s);

  const dataset::Snapshot& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 17 < last.files.size() ? std::size_t{17} : std::size_t{1})) {
    const auto& file = last.files[i];
    ASSERT_EQ(scheme.restore_file(file.path),
              dataset::materialize(file.content))
        << "seed=" << GetParam() << " " << file.path;
  }
}

TEST_P(PipelineProperty, RecipesCoverSnapshotExactly) {
  cloud::CloudTarget target;
  core::AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(seeded_config(GetParam()));
  const auto snapshot = gen.initial();
  scheme.backup(snapshot);

  // Conservation: every file has a recipe whose entries sum to its size.
  EXPECT_EQ(scheme.recipes().size(), snapshot.files.size());
  std::uint64_t recipe_bytes = 0;
  for (const auto& file : snapshot.files) {
    const auto* recipe = scheme.recipes().find(file.path);
    ASSERT_NE(recipe, nullptr) << file.path;
    EXPECT_EQ(recipe->file_size, file.size());
    std::uint64_t entry_sum = 0;
    for (const auto& e : recipe->entries) entry_sum += e.location.length;
    EXPECT_EQ(entry_sum, recipe->file_size) << file.path;
    recipe_bytes += recipe->file_size;
  }
  EXPECT_EQ(recipe_bytes, snapshot.total_bytes());
}

TEST_P(PipelineProperty, ContainersHoldExactlyTheUniquePayload) {
  cloud::CloudTarget target;
  core::AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(seeded_config(GetParam()));
  scheme.backup(gen.initial());

  // Sum of container payloads == sum of distinct (container,offset)
  // chunk lengths referenced by recipes.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint32_t> refs;
  for (const auto& path : scheme.recipes().paths()) {
    for (const auto& e : scheme.recipes().find(path)->entries) {
      refs[{e.location.container_id, e.location.offset}] = e.location.length;
    }
  }
  std::uint64_t referenced = 0;
  for (const auto& [key, len] : refs) referenced += len;

  std::uint64_t stored = 0;
  for (const auto& key : target.store().list("containers/")) {
    auto object = target.store().get(key);
    container::ContainerReader reader(std::move(*object));
    for (const auto& d : reader.descriptors()) stored += d.length;
  }
  EXPECT_EQ(stored, referenced) << "seed=" << GetParam();
}

TEST_P(PipelineProperty, DedupRatioNeverBelowOne) {
  for (const bool parallel : {false, true}) {
    cloud::CloudTarget target;
    core::AaDedupeOptions options;
    options.parallel = parallel;
    core::AaDedupeScheme scheme(target, options);
    dataset::DatasetGenerator gen(seeded_config(GetParam()));
    const auto sessions = gen.sessions(2);
    for (const auto& s : sessions) {
      const auto report = scheme.backup(s);
      EXPECT_GE(report.dedupe_ratio(), 1.0)
          << "seed=" << GetParam() << " parallel=" << parallel;
    }
  }
}

TEST_P(PipelineProperty, SchemesAgreeOnRestoredContent) {
  // Independent schemes restoring the same workload must agree with each
  // other (they all round-trip through completely different cloud layouts).
  dataset::DatasetGenerator gen_a(seeded_config(GetParam()));
  dataset::DatasetGenerator gen_b(seeded_config(GetParam()));

  cloud::CloudTarget ta, tb;
  backup::FileLevelScheme file_scheme(ta);
  backup::ChunkLevelScheme chunk_scheme(tb);
  const auto snap_a = gen_a.initial();
  const auto snap_b = gen_b.initial();
  file_scheme.backup(snap_a);
  chunk_scheme.backup(snap_b);

  for (std::size_t i = 0; i < snap_a.files.size();
       i += (i + 23 < snap_a.files.size() ? std::size_t{23} : std::size_t{1})) {
    EXPECT_EQ(file_scheme.restore_file(snap_a.files[i].path),
              chunk_scheme.restore_file(snap_b.files[i].path))
        << snap_a.files[i].path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace aadedupe
