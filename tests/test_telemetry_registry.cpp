// MetricsRegistry tests: exact merge under concurrency, histogram bucket
// and percentile edges, registration semantics.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace aadedupe::telemetry {
namespace {

#ifdef AAD_TSAN
constexpr std::size_t kThreads = 4;
constexpr std::uint64_t kIncrementsPerThread = 2'000;
#else
constexpr std::size_t kThreads = 8;
constexpr std::uint64_t kIncrementsPerThread = 50'000;
#endif

TEST(MetricsRegistry, ConcurrentCountersMergeExactly) {
  MetricsRegistry registry;
  constexpr std::size_t kCounters = 5;
  std::vector<Counter> counters;
  for (std::size_t c = 0; c < kCounters; ++c) {
    counters.push_back(registry.counter("counter." + std::to_string(c)));
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        counters[i % kCounters].increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // N threads x M counters: every increment lands exactly once.
  const MetricsSnapshot snapshot = registry.snapshot();
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < kCounters; ++c) {
    total += snapshot.value("counter." + std::to_string(c));
  }
  EXPECT_EQ(total, kThreads * kIncrementsPerThread);
  EXPECT_GE(registry.shard_count(), 1u);
}

TEST(MetricsRegistry, ConcurrentHistogramCountIsExact) {
  MetricsRegistry registry;
  Histogram hist = registry.histogram("h");
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        hist.observe(t * kIncrementsPerThread + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const MetricsSnapshot snapshot = registry.snapshot();
  const MetricsSnapshot::Entry* entry = snapshot.find("h");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->histogram.count, kThreads * kIncrementsPerThread);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  Counter a = registry.counter("same");
  Counter b = registry.counter("same");
  a.add(3);
  b.add(4);
  EXPECT_EQ(registry.snapshot().value("same"), 7u);
  // Only one instrument exists.
  EXPECT_EQ(registry.snapshot().entries.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), PreconditionError);
  EXPECT_THROW((void)registry.histogram("x"), PreconditionError);
}

TEST(MetricsRegistry, SlotExhaustionThrows) {
  // Minimum legal capacity: one histogram fills the whole slot table.
  MetricsRegistry registry(/*slot_capacity=*/kHistogramBuckets + 1);
  (void)registry.histogram("big");
  EXPECT_THROW((void)registry.counter("one_more"), PreconditionError);
}

TEST(MetricsRegistry, GaugeMergesAsMaxAcrossThreads) {
  MetricsRegistry registry;
  Gauge gauge = registry.gauge("peak");
  gauge.set(10);
  std::thread other([gauge] { gauge.set(25); });
  other.join();
  EXPECT_EQ(registry.snapshot().value("peak"), 25u);
}

TEST(MetricsRegistry, DefaultHandlesAreInert) {
  Counter counter;
  Gauge gauge;
  Histogram hist;
  counter.add(1);
  gauge.set(1);
  hist.observe(1);  // must not crash
}

TEST(Histogram, BucketEdges) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket((1ull << 63) - 1), 63u);
  EXPECT_EQ(histogram_bucket(1ull << 63), 64u);
  EXPECT_EQ(histogram_bucket(std::numeric_limits<std::uint64_t>::max()), 64u);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(histogram_bucket_upper(0), 0u);
  EXPECT_EQ(histogram_bucket_upper(1), 1u);
  EXPECT_EQ(histogram_bucket_upper(2), 3u);
  EXPECT_EQ(histogram_bucket_upper(3), 7u);
  EXPECT_EQ(histogram_bucket_upper(64),
            std::numeric_limits<std::uint64_t>::max());
  // Every value lands in a bucket whose upper bound covers it.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 1023ull, 1024ull, 1ull << 40}) {
    EXPECT_GE(histogram_bucket_upper(histogram_bucket(v)), v);
  }
}

TEST(Histogram, PercentilesOnKnownDistribution) {
  MetricsRegistry registry;
  Histogram hist = registry.histogram("sizes");
  // 90 observations of 100 (bucket upper 127), 10 of 100000.
  for (int i = 0; i < 90; ++i) hist.observe(100);
  for (int i = 0; i < 10; ++i) hist.observe(100'000);

  const MetricsSnapshot snap = registry.snapshot();
  const MetricsSnapshot::Entry* entry = snap.find("sizes");
  ASSERT_NE(entry, nullptr);
  const HistogramSnapshot& h = entry->histogram;
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.sum, 90ull * 100 + 10ull * 100'000);
  EXPECT_EQ(h.percentile(50), histogram_bucket_upper(histogram_bucket(100)));
  EXPECT_EQ(h.percentile(90), histogram_bucket_upper(histogram_bucket(100)));
  EXPECT_EQ(h.percentile(99),
            histogram_bucket_upper(histogram_bucket(100'000)));
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum) / 100.0);
}

TEST(Histogram, PercentileEdgeCases) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.percentile(50), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  MetricsRegistry registry;
  Histogram hist = registry.histogram("zeros");
  hist.observe(0);
  const HistogramSnapshot h = registry.snapshot().find("zeros")->histogram;
  EXPECT_EQ(h.buckets[0], 1u);  // exact-zero bucket
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(h.percentile(100), 0u);
}

TEST(MetricsRegistry, TwoRegistriesDoNotCrossTalk) {
  MetricsRegistry a;
  MetricsRegistry b;
  Counter ca = a.counter("shared.name");
  Counter cb = b.counter("shared.name");
  ca.add(1);
  cb.add(2);
  EXPECT_EQ(a.snapshot().value("shared.name"), 1u);
  EXPECT_EQ(b.snapshot().value("shared.name"), 2u);
}

}  // namespace
}  // namespace aadedupe::telemetry
