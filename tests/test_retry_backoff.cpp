// RetryingBackend tests — backoff arithmetic, retry accounting, and the
// rule that every waited second lands on the *simulated* transfer clock,
// never on the wall clock.
#include "cloud/retrying_backend.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cloud/cloud_target.hpp"
#include "cloud/memory_backend.hpp"
#include "cloud/object_store.hpp"

namespace aadedupe::cloud {
namespace {

/// Fails the first `failures` put/get attempts per call sequence with a
/// fixed error, then delegates to a real in-memory backend.
class FlakyBackend final : public CloudBackend {
 public:
  FlakyBackend(CloudBackend& inner, int failures, CloudError error)
      : inner_(&inner), remaining_(failures), error_(error) {}

  CloudStatus put(const std::string& key, ConstByteSpan data) override {
    if (remaining_-- > 0) return error_;
    return inner_->put(key, data);
  }
  CloudResult<ByteBuffer> get(const std::string& key) override {
    if (remaining_-- > 0) return error_;
    return inner_->get(key);
  }
  CloudResult<bool> remove(const std::string& key) override {
    return inner_->remove(key);
  }
  std::string_view name() const noexcept override { return "flaky"; }

 private:
  CloudBackend* inner_;
  int remaining_;
  CloudError error_;
};

TEST(RetryPolicy, BackoffGrowsExponentiallyWithCap) {
  const RetryPolicy policy;  // base 0.5, x2, cap 8
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(5), 8.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(12), 8.0);  // capped
}

TEST(RetryingBackend, RetriesUntilSuccessAndChargesBackoffToSimClock) {
  ObjectStore store;
  double charged = 0.0;
  const ChargeFn charge = [&charged](double s) { charged += s; };
  MemoryBackend memory(store, WanLink{}, charge);
  FlakyBackend flaky(memory, /*failures=*/2, CloudError::kTransient);

  RetryPolicy policy;
  policy.jitter_fraction = 0.0;  // exact arithmetic below
  RetryingBackend retrier(flaky, policy, /*seed=*/1, charge);

  EXPECT_TRUE(retrier.put("k", ByteBuffer(1000)).ok());
  EXPECT_TRUE(store.exists("k"));

  EXPECT_EQ(retrier.operations(), 1u);
  EXPECT_EQ(retrier.attempts(), 3u);
  EXPECT_EQ(retrier.retries(), 2u);
  EXPECT_EQ(retrier.exhausted(), 0u);
  // Backoff before retry 1 (0.5 s) + retry 2 (1.0 s).
  EXPECT_DOUBLE_EQ(retrier.backoff_seconds(), 1.5);
  // All of it is simulated: upload wire time + the two waits.
  EXPECT_NEAR(charged, WanLink{}.upload_seconds(1000, 1) + 1.5, 1e-9);
}

TEST(RetryingBackend, JitterStaysWithinFractionAndIsDeterministic) {
  const auto run = [](std::uint64_t seed) {
    ObjectStore store;
    double charged = 0.0;
    const ChargeFn charge = [&charged](double s) { charged += s; };
    MemoryBackend memory(store, WanLink{}, charge);
    FlakyBackend flaky(memory, 2, CloudError::kThrottled);
    RetryingBackend retrier(flaky, RetryPolicy{}, seed, charge);
    EXPECT_TRUE(retrier.put("k", ByteBuffer(10)).ok());
    return retrier.backoff_seconds();
  };
  const double backoff = run(42);
  // Unjittered total is 1.5 s; the default 25% jitter bounds it.
  EXPECT_GE(backoff, 1.5 * 0.75);
  EXPECT_LE(backoff, 1.5 * 1.25);
  EXPECT_DOUBLE_EQ(backoff, run(42));  // same seed, same waits
}

TEST(RetryingBackend, NotFoundIsNotRetried) {
  ObjectStore store;
  const ChargeFn charge = [](double) {};
  MemoryBackend memory(store, WanLink{}, charge);
  RetryingBackend retrier(memory, RetryPolicy{}, 1, charge);

  const auto got = retrier.get("missing");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error(), CloudError::kNotFound);
  EXPECT_EQ(retrier.attempts(), 1u);  // no point retrying a permanent error
  EXPECT_EQ(retrier.retries(), 0u);
  EXPECT_EQ(retrier.permanent_failures(), 1u);
}

TEST(RetryingBackend, ExhaustionSurfacesTheLastError) {
  ObjectStore store;
  const ChargeFn charge = [](double) {};
  MemoryBackend memory(store, WanLink{}, charge);
  FlakyBackend flaky(memory, /*failures=*/1000, CloudError::kTimeout);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingBackend retrier(flaky, policy, 1, charge);

  const auto result = retrier.put("k", ByteBuffer(10));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), CloudError::kTimeout);
  EXPECT_EQ(retrier.attempts(), 3u);
  EXPECT_EQ(retrier.exhausted(), 1u);
  EXPECT_FALSE(store.exists("k"));
}

TEST(RetryingBackend, DisabledRetriesMeansOneAttempt) {
  ObjectStore store;
  const ChargeFn charge = [](double) {};
  MemoryBackend memory(store, WanLink{}, charge);
  FlakyBackend flaky(memory, 1000, CloudError::kTransient);
  RetryingBackend retrier(flaky, RetryPolicy::none(), 1, charge);

  const auto result = retrier.put("k", ByteBuffer(10));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), CloudError::kTransient);
  EXPECT_EQ(retrier.attempts(), 1u);
  EXPECT_DOUBLE_EQ(retrier.backoff_seconds(), 0.0);
}

// ---- Through the full CloudTarget stack ----

TEST(CloudTargetRetries, BackoffWidensTheBackupWindowNotTheWallClock) {
  // An unreliable link makes the *measured* session slower: failed-attempt
  // wire time plus backoff lands on the transfer clock session reports use.
  CloudTarget reliable;
  CloudTarget unreliable;
  unreliable.inject_faults(FaultProfile::transient(0.3), /*seed=*/11);

  for (int i = 0; i < 10; ++i) {
    const std::string key = "obj" + std::to_string(i);
    EXPECT_TRUE(reliable.upload(key, ByteBuffer(100000)).ok());
    EXPECT_TRUE(unreliable.upload(key, ByteBuffer(100000)).ok());
  }
  EXPECT_GT(unreliable.retrier().retries(), 0u);
  EXPECT_GT(unreliable.retrier().backoff_seconds(), 0.0);
  EXPECT_GT(unreliable.transfer_seconds(),
            reliable.transfer_seconds() +
                unreliable.retrier().backoff_seconds() - 1e-9);
}

TEST(CloudTargetRetries, WithRetriesDisabledTypedErrorSurfaces) {
  // The acceptance gate: no silent data loss, no abort — a typed error.
  CloudTarget target;
  target.set_retry_policy(RetryPolicy::none());
  target.inject_faults(FaultProfile::transient(1.0), 1);
  const auto result = target.upload("containers/c1", ByteBuffer(1000));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), CloudError::kTransient);
  EXPECT_FALSE(target.store().exists("containers/c1"));
}

}  // namespace
}  // namespace aadedupe::cloud
