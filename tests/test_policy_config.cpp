// Policy-configuration tests: FastCDC is the default dynamic-category
// engine (the paper's Rabin CDC stays selectable for ablations), and the
// per-category hash/chunker routing matches the paper.
#include <gtest/gtest.h>

#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe::core {
namespace {

dataset::DatasetConfig policy_config_ds() {
  dataset::DatasetConfig config;
  config.seed = 131;
  config.session_bytes = 4ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(PolicyConfig, DefaultUsesFastCdcForDynamicCategory) {
  const DedupPolicy policy;
  EXPECT_EQ(policy.for_category(dataset::AppCategory::kDynamicUncompressed)
                .chunker->name(),
            "fastcdc");
  EXPECT_EQ(policy.for_category(dataset::AppCategory::kStaticUncompressed)
                .chunker->name(),
            "sc");
}

TEST(PolicyConfig, PaperExactRabinCdcStaysSelectable) {
  PolicyConfig config;
  config.dynamic_engine = PolicyConfig::DynamicEngine::kRabinCdc;
  const DedupPolicy policy(config);
  EXPECT_EQ(policy.for_category(dataset::AppCategory::kDynamicUncompressed)
                .chunker->name(),
            "cdc");
  // Hash assignment is category-driven, not engine-driven.
  EXPECT_EQ(policy.for_category(dataset::AppCategory::kDynamicUncompressed)
                .hash_kind,
            hash::HashKind::kSha1);
}

TEST(PolicyConfig, CustomStaticChunkSize) {
  PolicyConfig config;
  config.static_chunk_size = 4096;
  const DedupPolicy policy(config);
  const auto* sc = dynamic_cast<const chunk::StaticChunker*>(
      policy.for_category(dataset::AppCategory::kStaticUncompressed).chunker);
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->chunk_size(), 4096u);
}

TEST(PolicyConfig, AaDedupeWithFastCdcRoundTrips) {
  cloud::CloudTarget target;
  AaDedupeOptions options;
  options.policy.dynamic_engine = PolicyConfig::DynamicEngine::kFastCdc;
  AaDedupeScheme scheme(target, options);

  dataset::DatasetGenerator gen(policy_config_ds());
  const auto sessions = gen.sessions(2);
  for (const auto& s : sessions) scheme.backup(s);

  const auto& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 9 < last.files.size() ? std::size_t{9} : std::size_t{1})) {
    const auto& file = last.files[i];
    ASSERT_EQ(scheme.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
}

TEST(PolicyConfig, FastCdcDedupComparableToRabinCdc) {
  dataset::DatasetGenerator gen_a(policy_config_ds());
  dataset::DatasetGenerator gen_b(policy_config_ds());
  const auto sessions_a = gen_a.sessions(2);
  const auto sessions_b = gen_b.sessions(2);

  cloud::CloudTarget ta, tb;
  AaDedupeOptions rabin_options;
  rabin_options.policy.dynamic_engine = PolicyConfig::DynamicEngine::kRabinCdc;
  AaDedupeScheme rabin(ta, rabin_options);
  AaDedupeOptions fast_options;
  fast_options.policy.dynamic_engine = PolicyConfig::DynamicEngine::kFastCdc;
  AaDedupeScheme fast(tb, fast_options);

  std::uint64_t rabin_bytes = 0, fast_bytes = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    rabin_bytes += rabin.backup(sessions_a[s]).transferred_bytes;
    fast_bytes += fast.backup(sessions_b[s]).transferred_bytes;
  }
  // Different boundaries, similar dedup effectiveness: within 15%.
  const double ratio = static_cast<double>(fast_bytes) /
                       static_cast<double>(rabin_bytes);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

}  // namespace
}  // namespace aadedupe::core
