// FaultInjectingBackend tests — the determinism contract above all: the
// failure schedule is a pure function of (seed, op, key, attempt), so two
// identical runs see identical faults regardless of request interleaving.
#include "cloud/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "cloud/cloud_target.hpp"

namespace aadedupe::cloud {
namespace {

/// Record the per-key outcome of one scripted run against a fresh target
/// with retries disabled (so every injected fault surfaces).
std::vector<int> scripted_outcomes(std::uint64_t seed,
                                   const std::vector<std::string>& keys) {
  CloudTarget target;
  target.set_retry_policy(RetryPolicy::none());
  FaultProfile profile;
  profile.put_transient_p = 0.3;
  profile.put_timeout_p = 0.1;
  profile.get_transient_p = 0.3;
  target.inject_faults(profile, seed);

  std::vector<int> outcomes;
  for (const std::string& key : keys) {
    const auto put = target.upload(key, ByteBuffer(1000));
    outcomes.push_back(put.ok() ? 0 : 1 + static_cast<int>(put.error()));
    const auto get = target.download(key);
    outcomes.push_back(get.ok() ? 0 : 1 + static_cast<int>(get.error()));
  }
  return outcomes;
}

TEST(FaultInjection, SameSeedSameSchedule) {
  const std::vector<std::string> keys = {"a", "b", "c", "d", "e", "f",
                                         "g", "h", "i", "j", "k", "l"};
  const auto first = scripted_outcomes(99, keys);
  const auto second = scripted_outcomes(99, keys);
  EXPECT_EQ(first, second);
  // And the schedule is non-trivial at these probabilities: some faults.
  int faults = 0;
  for (int o : first) faults += (o != 0);
  EXPECT_GT(faults, 0);
  EXPECT_LT(faults, static_cast<int>(first.size()));
}

TEST(FaultInjection, DifferentSeedDifferentSchedule) {
  std::vector<std::string> keys;
  for (int i = 0; i < 32; ++i) {
    // += instead of operator+: the rvalue-concat path trips GCC 12's
    // bogus -Wrestrict at -O3 (PR 105329).
    std::string key = "k";
    key += std::to_string(i);
    keys.push_back(std::move(key));
  }
  EXPECT_NE(scripted_outcomes(1, keys), scripted_outcomes(2, keys));
}

TEST(FaultInjection, ScheduleIndependentOfRequestOrder) {
  // The per-(op,key) attempt counter — not a global request counter —
  // drives the fault decision, so reordering requests across keys must
  // not change any key's outcome. This is what keeps parallel
  // deduplication runs reproducible.
  FaultProfile profile;
  profile.put_transient_p = 0.4;

  const auto run = [&](bool reversed) {
    CloudTarget target;
    target.set_retry_policy(RetryPolicy::none());
    target.inject_faults(profile, 7);
    std::vector<std::string> keys = {"p", "q", "r", "s", "t", "u", "v", "w"};
    if (reversed) std::reverse(keys.begin(), keys.end());
    std::map<std::string, bool> ok;
    for (const auto& key : keys) {
      ok[key] = target.upload(key, ByteBuffer(100)).ok();
    }
    return ok;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjection, RetriedAttemptsGetFreshDraws) {
  // A key that fails on attempt 1 is not doomed forever: the attempt
  // number feeds the RNG, so retries see new draws. With the default
  // 4-attempt budget a 30% transient rate virtually always lands.
  CloudTarget target;
  target.inject_faults(FaultProfile::transient(0.3), 5);
  int landed = 0;
  for (int i = 0; i < 20; ++i) {
    std::string key = "obj";
    key += std::to_string(i);
    if (target.upload(key, ByteBuffer(100)).ok()) {
      ++landed;
    }
  }
  EXPECT_EQ(landed, 20);
  ASSERT_NE(target.fault_injector(), nullptr);
  EXPECT_GT(target.fault_injector()->injected_transient(), 0u);
  // Retries visible as extra attempts.
  EXPECT_GT(target.fault_injector()->put_attempts(), 20u);
}

TEST(FaultInjection, DetectedCorruptionIsTypedAndRetriable) {
  CloudTarget target;
  target.set_retry_policy(RetryPolicy::none());
  EXPECT_TRUE(target.upload("k", ByteBuffer(256)).ok());

  FaultProfile profile;
  profile.get_corrupt_p = 1.0;
  profile.silent_corruption = false;
  target.inject_faults(profile, 3);
  const auto got = target.download("k");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error(), CloudError::kCorrupt);
  EXPECT_TRUE(is_retryable(CloudError::kCorrupt));
}

TEST(FaultInjection, SilentCorruptionDamagesBytesButReportsSuccess) {
  CloudTarget target;
  target.set_retry_policy(RetryPolicy::none());
  ByteBuffer original(256, std::byte{0xAA});
  EXPECT_TRUE(target.upload("k", ByteBuffer(original)).ok());

  FaultProfile profile;
  profile.get_corrupt_p = 1.0;
  profile.silent_corruption = true;
  target.inject_faults(profile, 3);
  const auto got = target.download("k");
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got.value(), original);  // bit-flipped or truncated
  EXPECT_GT(target.fault_injector()->injected_corrupt(), 0u);
  // The at-rest object is untouched — only the wire copy was damaged.
  target.clear_faults();
  const auto clean = target.download("k");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value(), original);
}

TEST(FaultInjection, FailedAttemptsStillBurnSimulatedTime) {
  CloudTarget target;
  target.set_retry_policy(RetryPolicy::none());
  FaultProfile profile;
  profile.put_transient_p = 1.0;  // every attempt dies mid-flight
  target.inject_faults(profile, 1);
  EXPECT_FALSE(target.upload("k", ByteBuffer(500000)).ok());
  // Half the wire time the attempt would have cost (default fraction).
  const double full = target.link().upload_seconds(500000, 1);
  EXPECT_NEAR(target.transfer_seconds(),
              full * profile.failed_attempt_time_fraction, 1e-9);
  // Nothing landed.
  EXPECT_FALSE(target.store().exists("k"));
}

TEST(FaultInjection, TimeoutChargesTimeoutSeconds) {
  CloudTarget target;
  target.set_retry_policy(RetryPolicy::none());
  FaultProfile profile;
  profile.put_timeout_p = 1.0;
  profile.timeout_s = 7.5;
  target.inject_faults(profile, 1);
  const auto result = target.upload("k", ByteBuffer(100));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), CloudError::kTimeout);
  EXPECT_DOUBLE_EQ(target.transfer_seconds(), 7.5);
}

TEST(FaultInjection, LatencySpikeSlowsSuccessfulOperation) {
  CloudTarget target;
  FaultProfile profile;
  profile.latency_spike_p = 1.0;
  profile.latency_spike_s = 3.0;
  target.inject_faults(profile, 1);
  EXPECT_TRUE(target.upload("k", ByteBuffer(100)).ok());
  EXPECT_NEAR(target.transfer_seconds(),
              target.link().upload_seconds(100, 1) + 3.0, 1e-9);
  EXPECT_GT(target.fault_injector()->latency_spikes(), 0u);
}

TEST(FaultInjection, RemovePassesThroughUntouched) {
  CloudTarget target;
  EXPECT_TRUE(target.upload("k", ByteBuffer(10)).ok());
  target.inject_faults(FaultProfile::transient(1.0), 1);
  const auto removed = target.remove_object("k");
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed.value());
}

TEST(FaultInjection, ClearFaultsRestoresPerfectLink) {
  CloudTarget target;
  target.inject_faults(FaultProfile::transient(1.0), 1);
  target.set_retry_policy(RetryPolicy::none());
  EXPECT_FALSE(target.upload("k", ByteBuffer(10)).ok());
  target.clear_faults();
  EXPECT_TRUE(target.upload("k", ByteBuffer(10)).ok());
  EXPECT_EQ(target.injected_fault_total(), 0u);  // zeroed when off
}

}  // namespace
}  // namespace aadedupe::cloud
