// Pipelined-uploader tests: the happy path, plus the fault-tolerance
// contract — typed terminal failures journal or throw from finish(), and
// an uploader-thread exception is captured instead of terminating.
#include "core/upload_pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/upload_journal.hpp"
#include "util/rng.hpp"

namespace aadedupe::core {
namespace {

TEST(UploadPipeline, AllEnqueuedObjectsLand) {
  cloud::CloudTarget target;
  {
    UploadPipeline pipeline(target);
    for (int i = 0; i < 100; ++i) {
      // += instead of operator+: the rvalue-concat path trips GCC 12's
      // bogus -Wrestrict at -O3 (PR 105329).
      std::string key = "obj/";
      key += std::to_string(i);
      pipeline.enqueue(std::move(key),
                       ByteBuffer(static_cast<std::size_t>(i + 1)));
    }
    pipeline.finish();
    EXPECT_EQ(pipeline.enqueued(), 100u);
    EXPECT_EQ(pipeline.uploaded(), 100u);
    EXPECT_EQ(pipeline.failed(), 0u);
  }
  EXPECT_EQ(target.store().object_count(), 100u);
  EXPECT_TRUE(target.store().exists("obj/0"));
  EXPECT_TRUE(target.store().exists("obj/99"));
}

TEST(UploadPipeline, DestructorFlushes) {
  cloud::CloudTarget target;
  {
    UploadPipeline pipeline(target);
    pipeline.enqueue("k", ByteBuffer(10));
    // No explicit finish: destructor must drain.
  }
  EXPECT_TRUE(target.store().exists("k"));
}

TEST(UploadPipeline, FinishIsIdempotent) {
  cloud::CloudTarget target;
  UploadPipeline pipeline(target);
  pipeline.enqueue("k", ByteBuffer(1));
  pipeline.finish();
  pipeline.finish();
  EXPECT_TRUE(target.store().exists("k"));
}

TEST(UploadPipeline, ConcurrentProducers) {
  cloud::CloudTarget target;
  {
    UploadPipelineOptions options;
    options.queue_capacity = 4;
    UploadPipeline pipeline(target, options);
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&pipeline, t] {
        for (int i = 0; i < 200; ++i) {
          std::string key = "t";
          key += std::to_string(t);
          key += '/';
          key += std::to_string(i);
          pipeline.enqueue(std::move(key), ByteBuffer(64));
        }
      });
    }
    for (auto& p : producers) p.join();
    pipeline.finish();
  }
  EXPECT_EQ(target.store().object_count(), 800u);
}

TEST(UploadPipeline, PayloadBytesAreIntact) {
  cloud::CloudTarget target;
  ByteBuffer payload(10000);
  Xoshiro256 rng(1);
  rng.fill(payload);
  {
    UploadPipeline pipeline(target);
    pipeline.enqueue("data", ByteBuffer(payload));
  }
  const auto got = target.store().get("data");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(UploadPipeline, UploaderExceptionRethrownFromFinish) {
  // The seed behaviour was std::terminate — an exception on the uploader
  // thread must instead surface from finish().
  UploadPipeline pipeline(
      [](const UploadItem& item) -> cloud::CloudStatus {
        if (item.key == "boom") throw std::logic_error("uploader bug");
        return cloud::CloudOk{};
      },
      UploadPipelineOptions{});
  pipeline.enqueue("fine", ByteBuffer(8));
  pipeline.enqueue("boom", ByteBuffer(8));
  EXPECT_THROW(pipeline.finish(), std::logic_error);
  // Reported once; a second finish (e.g. from the destructor) is calm.
  EXPECT_NO_THROW(pipeline.finish());
}

TEST(UploadPipeline, TerminalFailureThrowsTypedErrorWithoutJournal) {
  UploadPipeline pipeline(
      [](const UploadItem&) -> cloud::CloudStatus {
        return cloud::CloudError::kTimeout;
      },
      UploadPipelineOptions{});
  pipeline.enqueue("containers/c7", ByteBuffer(16));
  try {
    pipeline.finish();
    FAIL() << "finish() must surface the terminal failure";
  } catch (const cloud::CloudTransportError& error) {
    EXPECT_EQ(error.key(), "containers/c7");
    EXPECT_EQ(error.error(), cloud::CloudError::kTimeout);
  }
  EXPECT_NO_THROW(pipeline.finish());  // reported once
}

TEST(UploadPipeline, TerminalFailuresParkInJournal) {
  UploadJournal journal;
  UploadPipelineOptions options;
  options.journal = &journal;
  UploadPipeline pipeline(
      [](const UploadItem& item) -> cloud::CloudStatus {
        if (item.key == "bad") return cloud::CloudError::kTransient;
        return cloud::CloudOk{};
      },
      options);
  pipeline.enqueue("good", ByteBuffer(4));
  pipeline.enqueue(UploadItem{"bad", ByteBuffer(4), ObjectKind::kContainer});
  EXPECT_NO_THROW(pipeline.finish());  // degraded, not fatal
  EXPECT_EQ(pipeline.uploaded(), 1u);
  EXPECT_EQ(pipeline.failed(), 1u);
  EXPECT_EQ(pipeline.journaled(), 1u);
  ASSERT_EQ(journal.size(), 1u);
  const auto pending = journal.pending();
  EXPECT_EQ(pending[0].item.key, "bad");
  EXPECT_EQ(pending[0].error, cloud::CloudError::kTransient);
}

TEST(UploadPipeline, MetadataGetsMoreRequeuesThanContainers) {
  UploadJournal journal;
  UploadPipelineOptions options;
  options.journal = &journal;
  options.container_requeues = 0;
  options.metadata_requeues = 2;
  std::atomic<int> meta_attempts{0};
  std::atomic<int> container_attempts{0};
  UploadPipeline pipeline(
      [&](const UploadItem& item) -> cloud::CloudStatus {
        if (item.kind == ObjectKind::kMetadata) {
          ++meta_attempts;
        } else {
          ++container_attempts;
        }
        return cloud::CloudError::kTransient;  // everything fails
      },
      options);
  pipeline.enqueue(UploadItem{"meta/x", ByteBuffer(4), ObjectKind::kMetadata});
  pipeline.enqueue(
      UploadItem{"containers/c1", ByteBuffer(4), ObjectKind::kContainer});
  pipeline.finish();
  EXPECT_EQ(meta_attempts.load(), 3);       // 1 + 2 requeues
  EXPECT_EQ(container_attempts.load(), 1);  // 1 + 0 requeues
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(pipeline.requeues(), 2u);
}

TEST(UploadJournal, SerializeRoundTripAndReplay) {
  UploadJournal journal;
  journal.add(UploadItem{"containers/c3", to_buffer("payload-bytes"),
                         ObjectKind::kContainer},
              cloud::CloudError::kTimeout);
  journal.add(UploadItem{"meta/AA-Dedupe/s1/recipes", to_buffer("recipes"),
                         ObjectKind::kMetadata},
              cloud::CloudError::kTransient);

  const ByteBuffer image = journal.serialize();
  UploadJournal restored = UploadJournal::deserialize(image);
  ASSERT_EQ(restored.size(), 2u);
  const auto pending = restored.pending();
  EXPECT_EQ(pending[0].item.key, "containers/c3");
  EXPECT_EQ(pending[0].item.kind, ObjectKind::kContainer);
  EXPECT_EQ(pending[0].error, cloud::CloudError::kTimeout);
  EXPECT_EQ(pending[1].item.kind, ObjectKind::kMetadata);

  cloud::CloudTarget target;
  EXPECT_EQ(restored.replay(target), 2u);
  EXPECT_TRUE(restored.empty());
  EXPECT_TRUE(target.store().exists("containers/c3"));
  EXPECT_TRUE(target.store().exists("meta/AA-Dedupe/s1/recipes"));
}

TEST(UploadJournal, DeserializeRejectsGarbage) {
  EXPECT_THROW(UploadJournal::deserialize(to_buffer("not a journal")),
               FormatError);
  // Truncated: valid magic, then a lying count.
  ByteBuffer image = to_buffer("AADJRNL1");
  append_le32(image, 3);
  EXPECT_THROW(UploadJournal::deserialize(image), FormatError);
}

}  // namespace
}  // namespace aadedupe::core
