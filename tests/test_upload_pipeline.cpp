// Pipelined-uploader tests.
#include "core/upload_pipeline.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace aadedupe::core {
namespace {

TEST(UploadPipeline, AllEnqueuedObjectsLand) {
  cloud::CloudTarget target;
  {
    UploadPipeline pipeline(target);
    for (int i = 0; i < 100; ++i) {
      pipeline.enqueue("obj/" + std::to_string(i),
                       ByteBuffer(static_cast<std::size_t>(i + 1)));
    }
    pipeline.finish();
  }
  EXPECT_EQ(target.store().object_count(), 100u);
  EXPECT_TRUE(target.store().exists("obj/0"));
  EXPECT_TRUE(target.store().exists("obj/99"));
}

TEST(UploadPipeline, DestructorFlushes) {
  cloud::CloudTarget target;
  {
    UploadPipeline pipeline(target);
    pipeline.enqueue("k", ByteBuffer(10));
    // No explicit finish: destructor must drain.
  }
  EXPECT_TRUE(target.store().exists("k"));
}

TEST(UploadPipeline, FinishIsIdempotent) {
  cloud::CloudTarget target;
  UploadPipeline pipeline(target);
  pipeline.enqueue("k", ByteBuffer(1));
  pipeline.finish();
  pipeline.finish();
  EXPECT_TRUE(target.store().exists("k"));
}

TEST(UploadPipeline, ConcurrentProducers) {
  cloud::CloudTarget target;
  {
    UploadPipeline pipeline(target, /*queue_capacity=*/4);
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&pipeline, t] {
        for (int i = 0; i < 200; ++i) {
          pipeline.enqueue(
              "t" + std::to_string(t) + "/" + std::to_string(i),
              ByteBuffer(64));
        }
      });
    }
    for (auto& p : producers) p.join();
    pipeline.finish();
  }
  EXPECT_EQ(target.store().object_count(), 800u);
}

TEST(UploadPipeline, PayloadBytesAreIntact) {
  cloud::CloudTarget target;
  ByteBuffer payload(10000);
  Xoshiro256 rng(1);
  rng.fill(payload);
  {
    UploadPipeline pipeline(target);
    pipeline.enqueue("data", ByteBuffer(payload));
  }
  const auto got = target.store().get("data");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

}  // namespace
}  // namespace aadedupe::core
