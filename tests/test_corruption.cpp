// Failure-injection sweeps: every on-wire/on-disk format parser must
// reject corrupted input with FormatError (or accept a semantically valid
// mutation) — never crash, hang, or read out of bounds. Each sweep
// truncates at every length and flips bytes across the image.
#include <gtest/gtest.h>

#include "container/container.hpp"
#include "container/recipe.hpp"
#include "crypto/convergent.hpp"
#include "hash/md5.hpp"
#include "index/memory_index.hpp"
#include "index/partitioned_index.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aadedupe {
namespace {

/// Build "prefix<n>" with +=: the operator+ rvalue-concat path trips
/// GCC 12's bogus -Wrestrict at -O3 (PR 105329).
std::string cat(const char* prefix, std::size_t n) {
  std::string out = prefix;
  out += std::to_string(n);
  return out;
}

ByteBuffer random_bytes(std::size_t n, std::uint64_t seed) {
  ByteBuffer data(n);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

/// Parse attempt must either succeed or throw FormatError — anything else
/// (other exceptions, crashes) fails the test.
template <typename Parse>
void expect_parse_or_format_error(Parse&& parse, const std::string& what) {
  try {
    parse();
  } catch (const FormatError&) {
    // acceptable
  } catch (const std::exception& e) {
    FAIL() << what << ": unexpected exception type: " << e.what();
  }
}

// ---- Container images ----

ByteBuffer sample_container() {
  container::ContainerBuilder builder(3, 16 * 1024);
  for (int i = 0; i < 5; ++i) {
    const ByteBuffer chunk =
        random_bytes(700 + static_cast<std::size_t>(i) * 131,
                     static_cast<std::uint64_t>(i));
    builder.add(hash::Md5::hash(chunk), chunk);
  }
  return builder.seal(false);
}

TEST(CorruptionSweep, ContainerTruncationNeverCrashes) {
  const ByteBuffer image = sample_container();
  for (std::size_t len = 0; len < image.size();
       len += (len < 128 ? 1 : 37)) {
    ByteBuffer cut(image.begin(),
                   image.begin() + static_cast<std::ptrdiff_t>(len));
    expect_parse_or_format_error(
        [&] { container::ContainerReader reader{std::move(cut)}; },
        cat("container truncated to ", len));
  }
}

TEST(CorruptionSweep, ContainerBitFlipsNeverCrash) {
  const ByteBuffer image = sample_container();
  for (std::size_t pos = 0; pos < image.size();
       pos += (pos < 256 ? 1 : 53)) {
    for (const unsigned flip : {0x01u, 0x80u, 0xffu}) {
      ByteBuffer mutated = image;
      mutated[pos] ^= static_cast<std::byte>(flip);
      expect_parse_or_format_error(
          [&] {
            container::ContainerReader reader{std::move(mutated)};
            // If it parsed, chunk reads must stay in bounds.
            for (const auto& d : reader.descriptors()) {
              (void)reader.chunk_at(d.offset, d.length);
            }
          },
          cat("container flip at ", pos));
    }
  }
}

// ---- Recipe store images ----

ByteBuffer sample_recipes() {
  container::RecipeStore store;
  for (int f = 0; f < 4; ++f) {
    container::FileRecipe recipe;
    recipe.path = cat("dir/file", static_cast<std::size_t>(f));
    recipe.path += ".doc";
    recipe.tag = "doc";
    for (int c = 0; c < 3; ++c) {
      container::RecipeEntry entry;
      std::string chunk_label = std::to_string(f);
      chunk_label += ':';
      chunk_label += std::to_string(c);
      entry.digest = hash::Md5::hash(as_bytes(chunk_label));
      entry.location = index::ChunkLocation{
          static_cast<std::uint64_t>(f), static_cast<std::uint32_t>(c * 10),
          500};
      recipe.entries.push_back(entry);
      recipe.file_size += 500;
    }
    store.put(std::move(recipe));
  }
  return store.serialize();
}

TEST(CorruptionSweep, RecipeTruncationNeverCrashes) {
  const ByteBuffer image = sample_recipes();
  for (std::size_t len = 0; len < image.size(); ++len) {
    ByteBuffer cut(image.begin(),
                   image.begin() + static_cast<std::ptrdiff_t>(len));
    expect_parse_or_format_error(
        [&] { (void)container::RecipeStore::deserialize(cut); },
        cat("recipes truncated to ", len));
  }
}

TEST(CorruptionSweep, RecipeBitFlipsNeverCrash) {
  const ByteBuffer image = sample_recipes();
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    ByteBuffer mutated = image;
    mutated[pos] ^= std::byte{0xff};
    expect_parse_or_format_error(
        [&] { (void)container::RecipeStore::deserialize(mutated); },
        cat("recipes flip at ", pos));
  }
}

// ---- Index images ----

ByteBuffer sample_index_image() {
  index::PartitionedIndex idx;
  for (const std::string part : {"doc", "mp3"}) {
    for (int i = 0; i < 10; ++i) {
      idx.shard(part).insert(
          hash::Md5::hash(as_bytes(cat(part.c_str(), static_cast<std::size_t>(i)))),
          index::ChunkLocation{static_cast<std::uint64_t>(i), 0, 8192});
    }
  }
  return idx.serialize();
}

TEST(CorruptionSweep, PartitionedIndexTruncationNeverCrashes) {
  const ByteBuffer image = sample_index_image();
  for (std::size_t len = 0; len < image.size(); ++len) {
    ByteBuffer cut(image.begin(),
                   image.begin() + static_cast<std::ptrdiff_t>(len));
    index::PartitionedIndex idx;
    expect_parse_or_format_error([&] { idx.deserialize(cut); },
                                 cat("index truncated to ", len));
  }
}

TEST(CorruptionSweep, PartitionedIndexBitFlipsNeverCrash) {
  const ByteBuffer image = sample_index_image();
  for (std::size_t pos = 0; pos < image.size(); pos += 3) {
    ByteBuffer mutated = image;
    mutated[pos] ^= std::byte{0x55};
    index::PartitionedIndex idx;
    expect_parse_or_format_error([&] { idx.deserialize(mutated); },
                                 cat("index flip at ", pos));
  }
}

// ---- Key store images ----

TEST(CorruptionSweep, KeyStoreTruncationNeverCrashes) {
  const crypto::ChaChaKey master = crypto::derive_master_key("m", 10);
  crypto::KeyStore store;
  for (int i = 0; i < 8; ++i) {
    const std::string key_name = cat("k", static_cast<std::size_t>(i));
    const auto label = as_bytes(key_name);
    store.put(hash::Md5::hash(label), crypto::derive_content_key(label));
  }
  const ByteBuffer image = store.serialize(master);
  for (std::size_t len = 0; len < image.size(); ++len) {
    ByteBuffer cut(image.begin(),
                   image.begin() + static_cast<std::ptrdiff_t>(len));
    expect_parse_or_format_error(
        [&] { (void)crypto::KeyStore::deserialize(cut, master); },
        cat("keystore truncated to ", len));
  }
}

}  // namespace
}  // namespace aadedupe
