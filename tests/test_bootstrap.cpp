// Cloud-bootstrap tests: a replacement machine with NO local state
// recovers the full client from the per-session metadata AA-Dedupe syncs
// to the cloud.
#include <gtest/gtest.h>

#include "backup/keys.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe::core {
namespace {

dataset::DatasetConfig boot_config(std::uint64_t seed = 91) {
  dataset::DatasetConfig config;
  config.seed = seed;
  config.session_bytes = 4ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(Bootstrap, EmptyCloudYieldsZeroSessions) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  EXPECT_EQ(scheme.bootstrap_from_cloud(), 0u);
}

TEST(Bootstrap, RecoversAllSessionsFromCloudMetadata) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(boot_config());
  const auto sessions = gen.sessions(3);
  {
    AaDedupeScheme original(target);
    for (const auto& s : sessions) original.backup(s);
  }  // the "laptop" is lost; only the cloud remains

  AaDedupeScheme replacement(target);
  EXPECT_EQ(replacement.bootstrap_from_cloud(), 3u);
  EXPECT_EQ(replacement.restorable_sessions(),
            (std::vector<std::uint32_t>{0, 1, 2}));

  for (std::size_t i = 0; i < sessions.back().files.size();
       i += (i + 9 < sessions.back().files.size() ? std::size_t{9} : std::size_t{1})) {
    const auto& file = sessions.back().files[i];
    ASSERT_EQ(replacement.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
  // Point-in-time restores work too.
  const auto& old_file = sessions[0].files.front();
  EXPECT_EQ(replacement.restore_file_at(old_file.path, 0),
            dataset::materialize(old_file.content));
}

TEST(Bootstrap, NextBackupDeduplicatesAgainstRecoveredState) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(boot_config());
  const auto sessions = gen.sessions(3);
  std::uint64_t first_bytes = 0;
  {
    AaDedupeScheme original(target);
    first_bytes = original.backup(sessions[0]).transferred_bytes;
    original.backup(sessions[1]);
  }

  AaDedupeScheme replacement(target);
  ASSERT_EQ(replacement.bootstrap_from_cloud(), 2u);
  const auto report = replacement.backup(sessions[2]);
  EXPECT_LT(report.transferred_bytes, first_bytes / 3)
      << "recovered index must dedup the next session";
  // New containers did not overwrite old ones.
  const auto& old_file = sessions[0].files.front();
  EXPECT_EQ(replacement.restore_file_at(old_file.path, 0),
            dataset::materialize(old_file.content));
}

TEST(Bootstrap, WorksWithoutIndexSyncViaRecipeRebuild) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(boot_config());
  const auto sessions = gen.sessions(2);
  {
    AaDedupeOptions options;
    options.sync_index = false;  // only recipes in the cloud
    AaDedupeScheme original(target, options);
    for (const auto& s : sessions) original.backup(s);
  }

  AaDedupeScheme replacement(target);
  EXPECT_EQ(replacement.bootstrap_from_cloud(), 2u);
  EXPECT_GT(replacement.aa_index().total_size(), 0u)
      << "index must be rebuilt from recipes when no image was synced";
  const auto& file = sessions.back().files.front();
  EXPECT_EQ(replacement.restore_file(file.path),
            dataset::materialize(file.content));
}

TEST(Bootstrap, EncryptedRecoveryNeedsPassphrase) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(boot_config());
  const auto snapshot = gen.initial();
  AaDedupeOptions options;
  options.convergent_encryption = true;
  options.passphrase = "correct";
  {
    AaDedupeScheme original(target, options);
    original.backup(snapshot);
  }

  // Right passphrase: full recovery.
  AaDedupeScheme good(target, options);
  ASSERT_EQ(good.bootstrap_from_cloud(), 1u);
  const auto& file = snapshot.files.front();
  EXPECT_EQ(good.restore_file(file.path),
            dataset::materialize(file.content));

  // Wrong passphrase: the wrapped keys unwrap to garbage, so restore
  // produces wrong bytes (and integrity checking above would catch it).
  AaDedupeOptions wrong_options = options;
  wrong_options.passphrase = "wrong";
  AaDedupeScheme bad(target, wrong_options);
  ASSERT_EQ(bad.bootstrap_from_cloud(), 1u);
  EXPECT_NE(bad.restore_file(file.path),
            dataset::materialize(file.content));
}

TEST(Bootstrap, MixedFormatIndexChainReplays) {
  // A client upgraded mid-history: session 0's index object is a legacy
  // serialize() image, sessions 1-2 ship incremental checkpoints. The
  // bootstrap replay must handle both formats in one chain.
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(boot_config());
  const auto sessions = gen.sessions(3);
  std::uint64_t full_index_size = 0;
  {
    AaDedupeScheme original(target);
    original.backup(sessions[0]);
    // Rewrite session 0's index object in the pre-checkpoint format (a
    // legacy full image carries the same state as the checkpoint base).
    ASSERT_TRUE(
        target
            .upload(backup::keys::session_meta(original.name(), 0, "index"),
                    original.aa_index().serialize())
            .ok());
    original.backup(sessions[1]);
    original.backup(sessions[2]);
    full_index_size = original.aa_index().total_size();
  }

  AaDedupeScheme replacement(target);
  ASSERT_EQ(replacement.bootstrap_from_cloud(), 3u);
  EXPECT_EQ(replacement.aa_index().total_size(), full_index_size);
  const auto& file = sessions.back().files.front();
  EXPECT_EQ(replacement.restore_file(file.path),
            dataset::materialize(file.content));
}

TEST(Bootstrap, MissingLatestIndexObjectFallsBackToRebuild) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(boot_config());
  const auto sessions = gen.sessions(2);
  {
    AaDedupeScheme original(target);
    for (const auto& s : sessions) original.backup(s);
  }
  // The freshest link of the checkpoint chain is gone: replaying only the
  // older objects would under-restore, so the recipes rebuild the index.
  (void)target.remove_object(
      backup::keys::session_meta("AA-Dedupe", 1, "index"));

  AaDedupeScheme replacement(target);
  ASSERT_EQ(replacement.bootstrap_from_cloud(), 2u);
  EXPECT_GT(replacement.aa_index().total_size(), 0u);
  const auto& file = sessions.back().files.front();
  EXPECT_EQ(replacement.restore_file(file.path),
            dataset::materialize(file.content));
}

TEST(Bootstrap, RecoveredStateDedupesAfterGc) {
  // After GC rewrites the cloud index object (kReset + fresh bases), a
  // bootstrap sees exactly the retained fingerprints and the next backup
  // still deduplicates against them.
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(boot_config());
  const auto sessions = gen.sessions(3);
  std::uint64_t first_bytes = 0;
  {
    AaDedupeScheme original(target);
    first_bytes = original.backup(sessions[0]).transferred_bytes;
    original.backup(sessions[1]);
    original.collect_garbage(1);  // keep only session 1
  }
  AaDedupeScheme replacement(target);
  ASSERT_EQ(replacement.bootstrap_from_cloud(), 1u);
  const auto report = replacement.backup(sessions[2]);
  EXPECT_LT(report.transferred_bytes, first_bytes / 3)
      << "post-GC index object must still dedup the next session";
}

TEST(Bootstrap, RespectsGcRetention) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(boot_config());
  const auto sessions = gen.sessions(3);
  {
    AaDedupeScheme original(target);
    for (const auto& s : sessions) original.backup(s);
    original.collect_garbage(1);  // expire sessions 0 and 1
  }
  AaDedupeScheme replacement(target);
  EXPECT_EQ(replacement.bootstrap_from_cloud(), 1u);
  EXPECT_EQ(replacement.restorable_sessions(),
            (std::vector<std::uint32_t>{2}));
}

}  // namespace
}  // namespace aadedupe::core
