// Per-application statistics tests.
#include <gtest/gtest.h>

#include <map>

#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe::core {
namespace {

dataset::DatasetConfig stats_config() {
  dataset::DatasetConfig config;
  config.seed = 101;
  config.session_bytes = 6ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(ApplicationStats, PolicyColumnsMatchCategories) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(stats_config());
  scheme.backup(gen.initial());

  std::map<std::string, AaDedupeScheme::ApplicationStats> rows;
  for (const auto& row : scheme.application_stats()) {
    rows.emplace(row.partition, row);
  }
  EXPECT_EQ(rows.at("mp3").chunker, "wfc");
  EXPECT_EQ(rows.at("mp3").hash, "rabin96");
  EXPECT_EQ(rows.at("vmdk").chunker, "sc");
  EXPECT_EQ(rows.at("vmdk").hash, "md5");
  EXPECT_EQ(rows.at("doc").chunker, "fastcdc");
  EXPECT_EQ(rows.at("doc").hash, "sha1");
  EXPECT_EQ(rows.at("tiny").chunker, "-");
}

TEST(ApplicationStats, TinyRowIsLastAndUnindexed) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(stats_config());
  scheme.backup(gen.initial());

  const auto rows = scheme.application_stats();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.back().partition, "tiny");
  EXPECT_EQ(rows.back().index_entries, 0u);
  EXPECT_GT(rows.back().session_files, 0u);
}

TEST(ApplicationStats, SessionTotalsMatchSnapshot) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(stats_config());
  const auto snapshot = gen.initial();
  scheme.backup(snapshot);

  std::uint64_t files = 0, bytes = 0;
  for (const auto& row : scheme.application_stats()) {
    files += row.session_files;
    bytes += row.session_bytes;
  }
  EXPECT_EQ(files, snapshot.files.size());
  EXPECT_EQ(bytes, snapshot.total_bytes());
}

TEST(ApplicationStats, IndexCountersAccumulateAcrossSessions) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(stats_config());
  const auto sessions = gen.sessions(2);
  scheme.backup(sessions[0]);
  std::uint64_t lookups_after_first = 0;
  for (const auto& row : scheme.application_stats()) {
    lookups_after_first += row.index_lookups;
  }
  scheme.backup(sessions[1]);
  std::uint64_t lookups_after_second = 0, hits_after_second = 0;
  for (const auto& row : scheme.application_stats()) {
    lookups_after_second += row.index_lookups;
    hits_after_second += row.index_hits;
  }
  EXPECT_GT(lookups_after_second, lookups_after_first);
  // Session 2 re-sees session 1's chunks: plenty of hits. The batched
  // front end resolves within-file repeats of new chunks from its
  // commit-local map without re-probing the shard, so the hit counter
  // sits slightly below the serial path's — hence 2/5, not 1/2.
  EXPECT_GT(hits_after_second, lookups_after_second * 2 / 5);
}

}  // namespace
}  // namespace aadedupe::core
