// AA-Dedupe-specific tests: size filter routing, application-aware index
// structure, per-category chunk/hash policy, container shipping, index
// sync, and parallel-vs-serial equivalence.
#include "core/aa_dedupe.hpp"

#include <gtest/gtest.h>

#include <set>

#include "backup/keys.hpp"
#include "core/policy.hpp"
#include "dataset/generator.hpp"
#include "index/checkpoint.hpp"

namespace aadedupe::core {
namespace {

dataset::DatasetConfig test_config(std::uint64_t bytes = 6ull << 20,
                                   std::uint64_t seed = 13) {
  dataset::DatasetConfig config;
  config.seed = seed;
  config.session_bytes = bytes;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(DedupPolicy, CategoryAssignmentsMatchPaper) {
  const DedupPolicy policy;
  // Compressed -> WFC + Rabin96.
  const auto compressed = policy.for_kind(dataset::FileKind::kMp3);
  EXPECT_EQ(compressed.chunker->name(), "wfc");
  EXPECT_EQ(compressed.hash_kind, hash::HashKind::kRabin96);
  // Static uncompressed -> SC + MD5.
  const auto static_data = policy.for_kind(dataset::FileKind::kVmdk);
  EXPECT_EQ(static_data.chunker->name(), "sc");
  EXPECT_EQ(static_data.hash_kind, hash::HashKind::kMd5);
  // Dynamic uncompressed -> CDC + SHA-1.
  const auto dynamic_data = policy.for_kind(dataset::FileKind::kDoc);
  EXPECT_EQ(dynamic_data.chunker->name(), "fastcdc");
  EXPECT_EQ(dynamic_data.hash_kind, hash::HashKind::kSha1);
}

TEST(DedupPolicy, PartitionKeyIsExtension) {
  EXPECT_EQ(DedupPolicy::partition_key(dataset::FileKind::kVmdk), "vmdk");
  EXPECT_EQ(DedupPolicy::partition_key(dataset::FileKind::kJpg), "jpg");
}

TEST(FileSizeFilter, ThresholdAtTenKilobytes) {
  const FileSizeFilter filter;
  EXPECT_TRUE(filter.is_tiny(0));
  EXPECT_TRUE(filter.is_tiny(10 * 1024 - 1));
  EXPECT_FALSE(filter.is_tiny(10 * 1024));
}

TEST(AaDedupe, IndexPartitionsAreFileExtensions) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(test_config());
  scheme.backup(gen.initial());

  const auto partitions = scheme.aa_index().partitions();
  const std::set<std::string> keys(partitions.begin(), partitions.end());
  // Every partition is one of the 12 application extensions — and never
  // the tiny stream (tiny files bypass the index entirely).
  for (const auto& key : keys) {
    bool known = false;
    for (const auto kind : dataset::all_file_kinds()) {
      known |= (key == dataset::extension(kind));
    }
    EXPECT_TRUE(known) << "unexpected partition " << key;
  }
  EXPECT_FALSE(keys.contains("tiny"));
  EXPECT_GE(keys.size(), 10u);
}

TEST(AaDedupe, TinyFilesNeverEnterTheIndex) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);

  // A snapshot of only tiny files: the index must stay empty.
  dataset::Snapshot snapshot;
  snapshot.session = 0;
  for (int i = 0; i < 50; ++i) {
    dataset::FileEntry f;
    f.path = "tiny/t" + std::to_string(i) + ".txt";
    f.kind = dataset::FileKind::kTxt;
    f.content.kind = f.kind;
    f.content.segments.push_back(dataset::Segment{
        dataset::Segment::Type::kUnique, static_cast<std::uint64_t>(i),
        5000});
    snapshot.files.push_back(std::move(f));
  }
  scheme.backup(snapshot);
  EXPECT_EQ(scheme.aa_index().total_size(), 0u);
  // But the data is stored (packed into containers) and restorable.
  const ByteBuffer restored = scheme.restore_file("tiny/t7.txt");
  EXPECT_EQ(restored, dataset::materialize(snapshot.files[7].content));
}

TEST(AaDedupe, TinyFilesArePackedIntoFewContainers) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::Snapshot snapshot;
  snapshot.session = 0;
  // 200 x 5 KB = ~1 MB of tiny files -> a handful of 1 MB containers, not
  // 200 objects (Cumulus-style aggregation, paper Section III.B).
  for (int i = 0; i < 200; ++i) {
    dataset::FileEntry f;
    f.path = "tiny/t" + std::to_string(i) + ".txt";
    f.kind = dataset::FileKind::kTxt;
    f.content.kind = f.kind;
    f.content.segments.push_back(dataset::Segment{
        dataset::Segment::Type::kUnique, static_cast<std::uint64_t>(i),
        5000});
    snapshot.files.push_back(std::move(f));
  }
  const auto report = scheme.backup(snapshot);
  EXPECT_LE(report.upload_requests, 10u);
}

TEST(AaDedupe, IndexImageSyncedToCloud) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(test_config(2ull << 20));
  scheme.backup(gen.initial());

  const std::string key = backup::keys::session_meta("AA-Dedupe", 0, "index");
  ASSERT_TRUE(target.store().exists(key));
  // The synced object is a checkpoint stream (the first session carries
  // the full base) and must reload into an equivalent partitioned index.
  const ByteBuffer image = *target.store().get(key);
  ASSERT_TRUE(index::is_checkpoint_stream(image));
  index::PartitionedIndex reloaded;
  index::BufferCheckpointSource source(image);
  reloaded.restore(source);
  EXPECT_EQ(reloaded.total_size(), scheme.aa_index().total_size());
  EXPECT_EQ(reloaded.partitions(), scheme.aa_index().partitions());
}

TEST(AaDedupe, SecondSessionSyncsIndexDelta) {
  // Periodic metadata sync ships deltas: session 1's index object only
  // carries what changed since session 0, so replaying 0 then 1 equals
  // the client's live index — and the delta is much smaller than a base.
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(test_config(2ull << 20));
  auto snapshot = gen.initial();
  scheme.backup(snapshot);
  scheme.backup(gen.next(snapshot));

  const ByteBuffer base =
      *target.store().get(backup::keys::session_meta("AA-Dedupe", 0, "index"));
  const ByteBuffer delta =
      *target.store().get(backup::keys::session_meta("AA-Dedupe", 1, "index"));
  EXPECT_LT(delta.size(), base.size() / 2);

  index::PartitionedIndex replayed;
  index::BufferCheckpointSource base_source(base);
  replayed.restore(base_source);
  index::BufferCheckpointSource delta_source(delta);
  replayed.restore(delta_source);
  EXPECT_EQ(replayed.total_size(), scheme.aa_index().total_size());
  EXPECT_EQ(replayed.partitions(), scheme.aa_index().partitions());
}

TEST(AaDedupe, WithinFileDuplicatesCommitOnceInBatchedFrontEnd) {
  // A file that repeats the same content: the batched commit's shard
  // probe sees every repeat as absent, and must still store the payload
  // once (the serial path dedups repeats on the fly after inserting).
  dataset::Snapshot snapshot;
  snapshot.session = 0;
  dataset::FileEntry f;
  f.path = "data/repeats.doc";
  f.kind = dataset::FileKind::kDoc;
  f.content.kind = f.kind;
  for (int i = 0; i < 8; ++i) {
    f.content.segments.push_back(dataset::Segment{
        dataset::Segment::Type::kUnique, 42, 96 * 1024});  // same seed
  }
  snapshot.files.push_back(f);

  cloud::CloudTarget target_f, target_s;
  AaDedupeOptions file_opts;
  file_opts.granularity = ParallelGranularity::kFile;
  file_opts.worker_threads = 4;
  AaDedupeOptions serial_opts;
  serial_opts.parallel = false;
  AaDedupeScheme file_scheme(target_f, file_opts);
  AaDedupeScheme serial_scheme(target_s, serial_opts);
  const auto rf = file_scheme.backup(snapshot);
  const auto rs = serial_scheme.backup(snapshot);

  EXPECT_EQ(file_scheme.restore_file(f.path),
            serial_scheme.restore_file(f.path));
  EXPECT_EQ(file_scheme.aa_index().total_size(),
            serial_scheme.aa_index().total_size());
  EXPECT_EQ(rf.transferred_bytes, rs.transferred_bytes);
  // Dedup of the repeats actually happened: shipped far less than the
  // logical 768 KB.
  EXPECT_LT(rf.transferred_bytes, 8u * 96u * 1024u);
}

TEST(AaDedupe, IndexSyncCanBeDisabled) {
  cloud::CloudTarget target;
  AaDedupeOptions options;
  options.sync_index = false;
  AaDedupeScheme scheme(target, options);
  dataset::DatasetGenerator gen(test_config(2ull << 20));
  scheme.backup(gen.initial());
  EXPECT_FALSE(target.store().exists(
      backup::keys::session_meta("AA-Dedupe", 0, "index")));
}

TEST(AaDedupe, RecipesSyncedToCloud) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(test_config(2ull << 20));
  const auto snapshot = gen.initial();
  scheme.backup(snapshot);

  const auto image = target.store().get(
      backup::keys::session_meta("AA-Dedupe", 0, "recipes"));
  ASSERT_TRUE(image.has_value());
  const auto recipes = container::RecipeStore::deserialize(*image);
  EXPECT_EQ(recipes.size(), snapshot.files.size());
}

TEST(AaDedupe, ParallelAndSerialProduceSameRestoredBytes) {
  dataset::DatasetGenerator gen_a(test_config(4ull << 20));
  dataset::DatasetGenerator gen_b(test_config(4ull << 20));
  const auto snapshot_a = gen_a.initial();
  const auto snapshot_b = gen_b.initial();

  cloud::CloudTarget target_p, target_s;
  AaDedupeOptions parallel_opts;
  parallel_opts.parallel = true;
  parallel_opts.worker_threads = 8;
  AaDedupeOptions serial_opts;
  serial_opts.parallel = false;

  AaDedupeScheme parallel_scheme(target_p, parallel_opts);
  AaDedupeScheme serial_scheme(target_s, serial_opts);
  parallel_scheme.backup(snapshot_a);
  serial_scheme.backup(snapshot_b);

  for (std::size_t i = 0; i < snapshot_a.files.size();
       i += (i + 13 < snapshot_a.files.size() ? std::size_t{13} : std::size_t{1})) {
    const auto& file = snapshot_a.files[i];
    EXPECT_EQ(parallel_scheme.restore_file(file.path),
              serial_scheme.restore_file(file.path))
        << file.path;
  }
  // Same logical dedup: identical index contents.
  EXPECT_EQ(parallel_scheme.aa_index().total_size(),
            serial_scheme.aa_index().total_size());
}

TEST(AaDedupe, FileAndStreamGranularityProduceSameResults) {
  // The two-phase file-granularity front end must reproduce the
  // stream-granularity session exactly: same restored bytes, same index
  // contents, same per-application stats — across multiple sessions so
  // cross-session dedup state is exercised too. A tiny batch budget forces
  // the front end through many batches.
  dataset::DatasetGenerator gen_file(test_config(4ull << 20));
  dataset::DatasetGenerator gen_stream(test_config(4ull << 20));

  cloud::CloudTarget target_f, target_s;
  AaDedupeOptions file_opts;
  file_opts.granularity = ParallelGranularity::kFile;
  file_opts.front_end_batch_bytes = 1 << 20;
  file_opts.worker_threads = 8;
  AaDedupeOptions stream_opts;
  stream_opts.granularity = ParallelGranularity::kStream;
  stream_opts.worker_threads = 8;

  AaDedupeScheme file_scheme(target_f, file_opts);
  AaDedupeScheme stream_scheme(target_s, stream_opts);

  dataset::Snapshot snapshot_f, snapshot_s;
  for (int session = 0; session < 3; ++session) {
    snapshot_f = session == 0 ? gen_file.initial() : gen_file.next(snapshot_f);
    snapshot_s =
        session == 0 ? gen_stream.initial() : gen_stream.next(snapshot_s);
    file_scheme.backup(snapshot_f);
    stream_scheme.backup(snapshot_s);
  }

  for (std::size_t i = 0; i < snapshot_f.files.size();
       i += (i + 7 < snapshot_f.files.size() ? std::size_t{7}
                                             : std::size_t{1})) {
    const auto& file = snapshot_f.files[i];
    EXPECT_EQ(file_scheme.restore_file(file.path),
              stream_scheme.restore_file(file.path))
        << file.path;
  }
  EXPECT_EQ(file_scheme.aa_index().total_size(),
            stream_scheme.aa_index().total_size());

  const auto rows_f = file_scheme.application_stats();
  const auto rows_s = stream_scheme.application_stats();
  ASSERT_EQ(rows_f.size(), rows_s.size());
  for (std::size_t i = 0; i < rows_f.size(); ++i) {
    EXPECT_EQ(rows_f[i].partition, rows_s[i].partition);
    EXPECT_EQ(rows_f[i].index_entries, rows_s[i].index_entries);
    EXPECT_EQ(rows_f[i].session_files, rows_s[i].session_files);
    EXPECT_EQ(rows_f[i].session_bytes, rows_s[i].session_bytes);
    EXPECT_EQ(rows_f[i].session_chunks, rows_s[i].session_chunks);
    // The dedup outcome per stream is identical too: the batched commit
    // ships exactly the container bytes the serial commit ships.
    EXPECT_EQ(rows_f[i].session_new_bytes, rows_s[i].session_new_bytes);
  }
}

TEST(AaDedupe, SecondSessionReusesChunksAcrossSessions) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(test_config());
  const auto sessions = gen.sessions(2);
  const auto r0 = scheme.backup(sessions[0]);
  const auto r1 = scheme.backup(sessions[1]);
  EXPECT_LT(r1.transferred_bytes, r0.transferred_bytes / 3)
      << "unchanged week-over-week data must dedup away";
}

TEST(AaDedupe, DigestWidthsFollowCategoryPolicy) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(test_config());
  const auto snapshot = gen.initial();
  scheme.backup(snapshot);

  for (const auto& file : snapshot.files) {
    if (file.size() < 10 * 1024) continue;
    const auto* recipe = scheme.recipes().find(file.path);
    ASSERT_NE(recipe, nullptr) << file.path;
    const std::size_t expected_width = [&] {
      switch (dataset::category_of(file.kind)) {
        case dataset::AppCategory::kCompressed:
          return std::size_t{12};  // Rabin-96
        case dataset::AppCategory::kStaticUncompressed:
          return std::size_t{16};  // MD5
        case dataset::AppCategory::kDynamicUncompressed:
          return std::size_t{20};  // SHA-1
      }
      return std::size_t{0};
    }();
    for (const auto& entry : recipe->entries) {
      ASSERT_EQ(entry.digest.size(), expected_width) << file.path;
    }
  }
}

TEST(AaDedupe, ContainersRespectCapacity) {
  cloud::CloudTarget target;
  AaDedupeOptions options;
  options.container_capacity = 256 * 1024;
  AaDedupeScheme scheme(target, options);
  dataset::DatasetGenerator gen(test_config(4ull << 20));
  scheme.backup(gen.initial());

  for (const auto& key : target.store().list("containers/")) {
    const auto object = target.store().get(key);
    ASSERT_TRUE(object.has_value());
    container::ContainerReader reader(std::move(*object));
    // Payload never exceeds capacity unless it is a single oversized chunk.
    std::uint64_t payload = 0;
    for (const auto& d : reader.descriptors()) payload += d.length;
    if (reader.descriptors().size() > 1) {
      EXPECT_LE(payload, options.container_capacity) << key;
    }
  }
}

}  // namespace
}  // namespace aadedupe::core
