// TraceExporter tests: a byte-exact golden Chrome-trace document built
// from a hand-fed span stream (fixed thread ids make it deterministic),
// plus live attach() wiring against a fake-clock Tracer.
#include "telemetry/trace_export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {
namespace {

SpanEvent make_event(Stage stage, std::string_view category, double start_s,
                     double wall_s, double self_s, double sim_s,
                     std::uint32_t thread) {
  SpanEvent event;
  event.stage = stage;
  event.category = category;
  event.start_s = start_s;
  event.wall_s = wall_s;
  event.self_s = self_s;
  event.sim_s = sim_s;
  event.thread = thread;
  return event;
}

TEST(TraceExporter, GoldenChromeTraceDocument) {
  TraceExporter exporter;
  exporter.add_span(
      make_event(Stage::kChunk, "doc", 0.5, 1.25, 1.0, 0.0, 0x12));
  exporter.add_span(
      make_event(Stage::kUpload, "", 2.0, 0.5, 0.5, 4.0, 0x34));
  exporter.add_counter("queue_depth", 1.0, 7.0);
  EXPECT_EQ(exporter.span_count(), 2u);
  EXPECT_EQ(exporter.counter_count(), 1u);

  JsonValue doc;
  exporter.fill_json(doc);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"thread 0012\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"thread 0034\"}},"
      "{\"name\":\"chunk\",\"cat\":\"doc\",\"ph\":\"X\",\"ts\":500000,"
      "\"dur\":1250000,\"pid\":1,\"tid\":1,"
      "\"args\":{\"self_s\":1,\"sim_s\":0}},"
      "{\"name\":\"upload\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":2000000,"
      "\"dur\":500000,\"pid\":1,\"tid\":2,"
      "\"args\":{\"self_s\":0.5,\"sim_s\":4}},"
      "{\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":1000000,\"pid\":1,"
      "\"args\":{\"queue_depth\":7}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(doc.dump(0), expected);
}

TEST(TraceExporter, AttachReceivesSpansFromATracer) {
  double now = 0.0;
  Tracer tracer([&now] { return now; });
  TraceExporter exporter;
  exporter.attach(tracer);

  {
    TraceSpan session(&tracer, Stage::kSession);
    now = 1.0;
    {
      TraceSpan chunk(&tracer, Stage::kChunk, "docs");
      chunk.add_sim_seconds(2.5);
      now = 3.0;
    }
    now = 4.0;
  }
  ASSERT_EQ(exporter.span_count(), 2u);

  JsonValue doc;
  exporter.fill_json(doc);
  const auto& events = doc["traceEvents"].array_items();
  // One thread => one metadata event, then the spans in completion order
  // (inner chunk finishes before the outer session).
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].find("ph")->as_string(), "M");

  const JsonValue& chunk = events[1];
  EXPECT_EQ(chunk.find("name")->as_string(), "chunk");
  EXPECT_EQ(chunk.find("cat")->as_string(), "docs");
  EXPECT_DOUBLE_EQ(chunk.find("ts")->as_double(), 1.0e6);
  EXPECT_DOUBLE_EQ(chunk.find("dur")->as_double(), 2.0e6);
  EXPECT_DOUBLE_EQ(chunk.find("args")->find("sim_s")->as_double(), 2.5);

  const JsonValue& session = events[2];
  EXPECT_EQ(session.find("name")->as_string(), "session");
  EXPECT_DOUBLE_EQ(session.find("ts")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(session.find("dur")->as_double(), 4.0e6);
  // Self time excludes the nested chunk span.
  EXPECT_DOUBLE_EQ(session.find("args")->find("self_s")->as_double(), 2.0);
  // Same thread for both spans => same dense tid.
  EXPECT_EQ(session.find("tid")->as_uint(), chunk.find("tid")->as_uint());
}

TEST(TraceExporter, WriteFileEmitsParseableDocument) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "aad_test_trace_export.json";
  std::filesystem::remove(path);

  TraceExporter exporter;
  exporter.add_span(
      make_event(Stage::kFingerprint, "mp3", 0.0, 0.25, 0.25, 0.0, 1));
  exporter.write_file(path.string());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"fingerprint\""), std::string::npos);
  std::filesystem::remove(path);

  EXPECT_THROW(exporter.write_file("/nonexistent-dir/x/trace.json"),
               FormatError);
}

}  // namespace
}  // namespace aadedupe::telemetry
