// Client-state persistence tests: an AA-Dedupe client must be able to
// stop, persist its state, and resume in a new process against the same
// cloud — still deduplicating against everything it backed up before.
// Plus the target-dedup taxonomy baseline and object-store durability.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "backup/target_dedupe.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "index/checkpoint.hpp"
#include "util/bytes.hpp"

namespace aadedupe {
namespace {

namespace fs = std::filesystem;

dataset::DatasetConfig state_config(std::uint64_t seed = 71) {
  dataset::DatasetConfig config;
  config.seed = seed;
  config.session_bytes = 4ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(StatePersistence, ExportImportRoundTrip) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(state_config());
  const auto sessions = gen.sessions(2);

  core::AaDedupeScheme original(target);
  for (const auto& s : sessions) original.backup(s);
  const ByteBuffer state = original.export_state();

  core::AaDedupeScheme resumed(target);
  resumed.import_state(state);
  EXPECT_EQ(resumed.restorable_sessions(), original.restorable_sessions());
  EXPECT_EQ(resumed.aa_index().total_size(),
            original.aa_index().total_size());

  // Restores work from the resumed client.
  const auto& file = sessions.back().files.front();
  EXPECT_EQ(resumed.restore_file(file.path),
            dataset::materialize(file.content));
}

TEST(StatePersistence, ResumedClientStillDeduplicates) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(state_config());
  const auto sessions = gen.sessions(3);

  ByteBuffer state;
  std::uint64_t first_session_bytes = 0;
  {
    core::AaDedupeScheme client(target);
    first_session_bytes = client.backup(sessions[0]).transferred_bytes;
    client.backup(sessions[1]);
    state = client.export_state();
  }  // client process "exits"

  core::AaDedupeScheme resumed(target);
  resumed.import_state(state);
  const auto report = resumed.backup(sessions[2]);
  // Cross-session dedup must survive the restart: session 3 ships a small
  // fraction of what session 1 shipped.
  EXPECT_LT(report.transferred_bytes, first_session_bytes / 3);

  // And restores of the new session work.
  const auto& file = sessions[2].files.front();
  EXPECT_EQ(resumed.restore_file(file.path),
            dataset::materialize(file.content));
}

TEST(StatePersistence, ContainerIdsDoNotCollideAfterResume) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(state_config());
  const auto sessions = gen.sessions(2);

  core::AaDedupeScheme first(target);
  first.backup(sessions[0]);
  const auto containers_before = target.store().list("containers/").size();

  core::AaDedupeScheme resumed(target);
  resumed.import_state(first.export_state());
  resumed.backup(sessions[1]);
  // New containers were appended, none overwritten: count grew and every
  // old object is still present.
  EXPECT_GT(target.store().list("containers/").size(), containers_before);
  const auto& old_file = sessions[0].files.front();
  EXPECT_EQ(resumed.restore_file_at(old_file.path, 0),
            dataset::materialize(old_file.content));
}

TEST(StatePersistence, EncryptedStateRoundTrip) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(state_config());
  const auto snapshot = gen.initial();

  core::AaDedupeOptions options;
  options.convergent_encryption = true;
  options.passphrase = "pw";
  ByteBuffer state;
  {
    core::AaDedupeScheme client(target, options);
    client.backup(snapshot);
    state = client.export_state();
  }
  core::AaDedupeScheme resumed(target, options);
  resumed.import_state(state);
  const auto& file = snapshot.files.front();
  EXPECT_EQ(resumed.restore_file(file.path),
            dataset::materialize(file.content));
}

TEST(StatePersistence, EncryptionModeMismatchRejected) {
  cloud::CloudTarget target;
  core::AaDedupeScheme plain(target);
  dataset::DatasetGenerator gen(state_config());
  plain.backup(gen.initial());

  core::AaDedupeOptions encrypted;
  encrypted.convergent_encryption = true;
  encrypted.passphrase = "pw";
  core::AaDedupeScheme secure(target, encrypted);
  EXPECT_THROW(secure.import_state(plain.export_state()), FormatError);
}

TEST(StatePersistence, StateImageCarriesCheckpointStream) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(state_config());
  core::AaDedupeScheme scheme(target);
  scheme.backup(gen.initial());
  const ByteBuffer state = scheme.export_state();
  // AADSTAT2 layout: magic 8 | encrypted u32 | latest u32 | next u64,
  // then the sized index blob — now a self-describing checkpoint stream.
  ASSERT_GT(state.size(), 32u);
  const std::uint64_t blob_len = load_le64(state.data() + 24);
  ASSERT_LE(32 + blob_len, state.size());
  EXPECT_TRUE(index::is_checkpoint_stream(
      ConstByteSpan{state}.subspan(32, blob_len)));
}

TEST(StatePersistence, PreCheckpointStateImageStillImports) {
  cloud::CloudTarget target;
  dataset::DatasetGenerator gen(state_config());
  const auto sessions = gen.sessions(2);
  core::AaDedupeScheme original(target);
  for (const auto& s : sessions) original.backup(s);

  // Reconstruct the pre-checkpoint AADSTAT2 layout: same framing, but the
  // index blob is a legacy serialize() image instead of a checkpoint
  // stream. Clients upgraded in place must still load such state files.
  const ByteBuffer state = original.export_state();
  const ByteBuffer legacy_index = original.aa_index().serialize();
  const std::uint64_t new_len = load_le64(state.data() + 24);
  ByteBuffer legacy(state.begin(), state.begin() + 24);
  append_le64(legacy, legacy_index.size());
  append(legacy, legacy_index);
  legacy.insert(legacy.end(),
                state.begin() + 32 + static_cast<std::ptrdiff_t>(new_len),
                state.end());

  core::AaDedupeScheme resumed(target);
  resumed.import_state(legacy);
  EXPECT_EQ(resumed.restorable_sessions(), original.restorable_sessions());
  EXPECT_EQ(resumed.aa_index().total_size(),
            original.aa_index().total_size());
  const auto& file = sessions.back().files.front();
  EXPECT_EQ(resumed.restore_file(file.path),
            dataset::materialize(file.content));
}

TEST(StatePersistence, MalformedStateRejected) {
  cloud::CloudTarget target;
  core::AaDedupeScheme scheme(target);
  EXPECT_THROW(scheme.import_state(ByteBuffer(4)), FormatError);
  dataset::DatasetGenerator gen(state_config());
  scheme.backup(gen.initial());
  ByteBuffer state = scheme.export_state();
  state.resize(state.size() - 7);
  core::AaDedupeScheme other(target);
  EXPECT_THROW(other.import_state(state), FormatError);
}

TEST(ObjectStorePersistence, SaveLoadRoundTrip) {
  const fs::path path =
      fs::temp_directory_path() /
      ("aad_store_" + std::to_string(::getpid()) + ".bin");
  cloud::ObjectStore store;
  store.put("a/key", to_buffer("payload-a"));
  store.put("b/key", ByteBuffer(10000, std::byte{7}));
  store.put("empty", {});
  store.save_to_file(path.string());

  cloud::ObjectStore loaded;
  loaded.load_from_file(path.string());
  EXPECT_EQ(loaded.object_count(), 3u);
  EXPECT_EQ(loaded.stored_bytes(), store.stored_bytes());
  EXPECT_EQ(to_string(*loaded.get("a/key")), "payload-a");
  EXPECT_EQ(loaded.get("b/key")->size(), 10000u);
  fs::remove(path);
}

TEST(ObjectStorePersistence, LoadRejectsGarbage) {
  const fs::path path =
      fs::temp_directory_path() /
      ("aad_store_bad_" + std::to_string(::getpid()) + ".bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a store image";
  }
  cloud::ObjectStore store;
  EXPECT_THROW(store.load_from_file(path.string()), FormatError);
  EXPECT_THROW(store.load_from_file("/no/such/file"), FormatError);
  fs::remove(path);
}

// ---- Target deduplication (the paper's Section II.B taxonomy) ----

TEST(TargetDedupe, StoresLikeSourceDedupButShipsEverything) {
  dataset::DatasetGenerator gen(state_config(73));
  const auto sessions = gen.sessions(2);

  cloud::CloudTarget target;
  backup::TargetDedupeScheme scheme(target);
  const auto r0 = scheme.backup(sessions[0]);
  const auto r1 = scheme.backup(sessions[1]);

  // WAN transfer is never saved: every session ships its full dataset.
  EXPECT_GE(r0.transferred_bytes, r0.dataset_bytes);
  EXPECT_GE(r1.transferred_bytes, r1.dataset_bytes);
  // But the server stores only deduplicated data: far less than the two
  // full datasets it received (roughly one session's unique data plus the
  // weekly churn).
  EXPECT_LT(static_cast<double>(target.store().stored_bytes()),
            static_cast<double>(r0.dataset_bytes + r1.dataset_bytes) * 0.7);
}

TEST(TargetDedupe, RestoreEqualsSource) {
  dataset::DatasetGenerator gen(state_config(79));
  const auto snapshot = gen.initial();
  cloud::CloudTarget target;
  backup::TargetDedupeScheme scheme(target);
  scheme.backup(snapshot);
  for (std::size_t i = 0; i < snapshot.files.size();
       i += (i + 11 < snapshot.files.size() ? std::size_t{11} : std::size_t{1})) {
    const auto& file = snapshot.files[i];
    ASSERT_EQ(scheme.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
}

TEST(TargetDedupe, BackupWindowMatchesFullTransfer) {
  dataset::DatasetGenerator gen(state_config(83));
  const auto snapshot = gen.initial();
  cloud::CloudTarget target;
  backup::TargetDedupeScheme scheme(target);
  const auto report = scheme.backup(snapshot);
  // The window is bound by shipping the FULL dataset — the paper's
  // argument for source-side dedup over slow uplinks.
  const double full_transfer_floor =
      static_cast<double>(report.dataset_bytes) /
      target.link().upload_bytes_per_s;
  EXPECT_GE(report.backup_window_seconds(), full_transfer_floor);
}

}  // namespace
}  // namespace aadedupe
