// Unit tests for the byte-buffer utilities.
#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/check.hpp"

namespace aadedupe {
namespace {

TEST(Bytes, AsBytesViewsString) {
  const std::string s = "abc";
  const ConstByteSpan view = as_bytes(s);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(static_cast<char>(view[0]), 'a');
  EXPECT_EQ(static_cast<char>(view[2]), 'c');
}

TEST(Bytes, ToBufferCopies) {
  const ByteBuffer buf = to_buffer("hello");
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(to_string(buf), "hello");
}

TEST(Bytes, HexRoundTrip) {
  // Explicit length: the literal contains an embedded NUL.
  const std::string raw("\x00\x01\xab\xff\x7f", 5);
  const ByteBuffer original = to_buffer(raw);
  const std::string hex = to_hex(original);
  EXPECT_EQ(hex, "0001abff7f");
  EXPECT_EQ(from_hex(hex), original);
}

TEST(Bytes, HexOfEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexUpperCaseAccepted) {
  EXPECT_EQ(from_hex("AB"), from_hex("ab"));
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), FormatError);
}

TEST(Bytes, FromHexRejectsNonHexDigits) {
  EXPECT_THROW(from_hex("zz"), FormatError);
  EXPECT_THROW(from_hex("0g"), FormatError);
  EXPECT_THROW(from_hex(" 1"), FormatError);
}

TEST(Bytes, Le32RoundTrip) {
  std::byte raw[4];
  for (std::uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    store_le32(raw, v);
    EXPECT_EQ(load_le32(raw), v);
  }
}

TEST(Bytes, Le64RoundTrip) {
  std::byte raw[8];
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1},
        std::uint64_t{0x0123456789abcdefull},
        std::numeric_limits<std::uint64_t>::max()}) {
    store_le64(raw, v);
    EXPECT_EQ(load_le64(raw), v);
  }
}

TEST(Bytes, Le32ByteOrderIsLittleEndian) {
  std::byte raw[4];
  store_le32(raw, 0x04030201u);
  EXPECT_EQ(static_cast<unsigned>(raw[0]), 0x01u);
  EXPECT_EQ(static_cast<unsigned>(raw[3]), 0x04u);
}

TEST(Bytes, AppendHelpers) {
  ByteBuffer out;
  append(out, as_bytes("ab"));
  append_le32(out, 0x11223344u);
  append_le64(out, 0x5566778899aabbccull);
  ASSERT_EQ(out.size(), 2u + 4u + 8u);
  EXPECT_EQ(load_le32(out.data() + 2), 0x11223344u);
  EXPECT_EQ(load_le64(out.data() + 6), 0x5566778899aabbccull);
}

}  // namespace
}  // namespace aadedupe
