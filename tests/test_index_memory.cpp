// In-memory chunk index tests.
#include "index/memory_index.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hash/md5.hpp"
#include "hash/sha1.hpp"
#include "util/check.hpp"

namespace aadedupe::index {
namespace {

hash::Digest digest_of(int i) {
  return hash::Sha1::hash(as_bytes("chunk-" + std::to_string(i)));
}

TEST(MemoryIndex, LookupMissThenHit) {
  MemoryChunkIndex idx;
  const auto d = digest_of(1);
  EXPECT_FALSE(idx.lookup(d).has_value());
  EXPECT_TRUE(idx.insert(d, ChunkLocation{7, 42, 100}));
  const auto found = idx.lookup(d);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->container_id, 7u);
  EXPECT_EQ(found->offset, 42u);
  EXPECT_EQ(found->length, 100u);
}

TEST(MemoryIndex, DuplicateInsertKeepsOriginal) {
  MemoryChunkIndex idx;
  const auto d = digest_of(2);
  EXPECT_TRUE(idx.insert(d, ChunkLocation{1, 0, 10}));
  EXPECT_FALSE(idx.insert(d, ChunkLocation{2, 5, 20}));
  EXPECT_EQ(idx.lookup(d)->container_id, 1u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(MemoryIndex, StatsCountLookupsHitsInserts) {
  MemoryChunkIndex idx;
  idx.insert(digest_of(1), {});
  idx.lookup(digest_of(1));
  idx.lookup(digest_of(2));
  const IndexStats s = idx.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(MemoryIndex, DifferentWidthDigestsAreDistinctKeys) {
  MemoryChunkIndex idx;
  const auto sha = hash::Sha1::hash(as_bytes("x"));
  const auto md5 = hash::Md5::hash(as_bytes("x"));
  idx.insert(sha, ChunkLocation{1, 0, 1});
  EXPECT_FALSE(idx.lookup(md5).has_value());
}

TEST(MemoryIndex, SerializeRoundTrip) {
  MemoryChunkIndex idx;
  for (int i = 0; i < 100; ++i) {
    idx.insert(digest_of(i),
               ChunkLocation{static_cast<std::uint64_t>(i),
                             static_cast<std::uint32_t>(i * 3),
                             static_cast<std::uint32_t>(i + 1)});
  }
  const ByteBuffer image = idx.serialize();

  MemoryChunkIndex restored;
  restored.deserialize(image);
  EXPECT_EQ(restored.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto loc = restored.lookup(digest_of(i));
    ASSERT_TRUE(loc.has_value()) << i;
    EXPECT_EQ(loc->container_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(loc->offset, static_cast<std::uint32_t>(i * 3));
    EXPECT_EQ(loc->length, static_cast<std::uint32_t>(i + 1));
  }
}

TEST(MemoryIndex, SerializeEmptyIndex) {
  MemoryChunkIndex idx;
  MemoryChunkIndex restored;
  restored.insert(digest_of(5), {});
  restored.deserialize(idx.serialize());
  EXPECT_EQ(restored.size(), 0u);  // deserialize replaces contents
}

TEST(MemoryIndex, DeserializeRejectsTruncatedHeader) {
  MemoryChunkIndex idx;
  EXPECT_THROW(idx.deserialize(ByteBuffer(4)), FormatError);
}

TEST(MemoryIndex, DeserializeRejectsTruncatedEntry) {
  MemoryChunkIndex idx;
  idx.insert(digest_of(1), {});
  ByteBuffer image = idx.serialize();
  image.resize(image.size() - 3);  // chop the last entry
  MemoryChunkIndex fresh;
  EXPECT_THROW(fresh.deserialize(image), FormatError);
}

TEST(MemoryIndex, DeserializeRejectsTrailingGarbage) {
  MemoryChunkIndex idx;
  idx.insert(digest_of(1), {});
  ByteBuffer image = idx.serialize();
  image.push_back(std::byte{0xee});
  MemoryChunkIndex fresh;
  EXPECT_THROW(fresh.deserialize(image), FormatError);
}

TEST(MemoryIndex, DeserializeRejectsBadDigestSize) {
  ByteBuffer image;
  append_le64(image, 1);
  image.push_back(std::byte{77});  // digest size 77 > kMaxSize
  image.resize(image.size() + 93, std::byte{0});
  MemoryChunkIndex idx;
  EXPECT_THROW(idx.deserialize(image), FormatError);
}

TEST(MemoryIndex, ConcurrentInsertLookupIsSafe) {
  MemoryChunkIndex idx;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int key = t * kPerThread + i;
        idx.insert(digest_of(key),
                   ChunkLocation{static_cast<std::uint64_t>(key), 0, 1});
        idx.lookup(digest_of(key / 2));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.size(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace aadedupe::index
