// In-memory chunk index tests.
#include "index/memory_index.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hash/md5.hpp"
#include "hash/sha1.hpp"
#include "index/checkpoint.hpp"
#include "util/check.hpp"

namespace aadedupe::index {
namespace {

hash::Digest digest_of(int i) {
  return hash::Sha1::hash(as_bytes("chunk-" + std::to_string(i)));
}

TEST(MemoryIndex, LookupMissThenHit) {
  MemoryChunkIndex idx;
  const auto d = digest_of(1);
  EXPECT_FALSE(idx.lookup(d).has_value());
  EXPECT_TRUE(idx.insert(d, ChunkLocation{7, 42, 100}));
  const auto found = idx.lookup(d);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->container_id, 7u);
  EXPECT_EQ(found->offset, 42u);
  EXPECT_EQ(found->length, 100u);
}

TEST(MemoryIndex, DuplicateInsertKeepsOriginal) {
  MemoryChunkIndex idx;
  const auto d = digest_of(2);
  EXPECT_TRUE(idx.insert(d, ChunkLocation{1, 0, 10}));
  EXPECT_FALSE(idx.insert(d, ChunkLocation{2, 5, 20}));
  EXPECT_EQ(idx.lookup(d)->container_id, 1u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(MemoryIndex, StatsCountLookupsHitsInserts) {
  MemoryChunkIndex idx;
  idx.insert(digest_of(1), {});
  idx.lookup(digest_of(1));
  idx.lookup(digest_of(2));
  const IndexStats s = idx.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(MemoryIndex, DifferentWidthDigestsAreDistinctKeys) {
  MemoryChunkIndex idx;
  const auto sha = hash::Sha1::hash(as_bytes("x"));
  const auto md5 = hash::Md5::hash(as_bytes("x"));
  idx.insert(sha, ChunkLocation{1, 0, 1});
  EXPECT_FALSE(idx.lookup(md5).has_value());
}

TEST(MemoryIndex, SerializeRoundTrip) {
  MemoryChunkIndex idx;
  for (int i = 0; i < 100; ++i) {
    idx.insert(digest_of(i),
               ChunkLocation{static_cast<std::uint64_t>(i),
                             static_cast<std::uint32_t>(i * 3),
                             static_cast<std::uint32_t>(i + 1)});
  }
  const ByteBuffer image = idx.serialize();

  MemoryChunkIndex restored;
  restored.deserialize(image);
  EXPECT_EQ(restored.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto loc = restored.lookup(digest_of(i));
    ASSERT_TRUE(loc.has_value()) << i;
    EXPECT_EQ(loc->container_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(loc->offset, static_cast<std::uint32_t>(i * 3));
    EXPECT_EQ(loc->length, static_cast<std::uint32_t>(i + 1));
  }
}

TEST(MemoryIndex, SerializeEmptyIndex) {
  MemoryChunkIndex idx;
  MemoryChunkIndex restored;
  restored.insert(digest_of(5), {});
  restored.deserialize(idx.serialize());
  EXPECT_EQ(restored.size(), 0u);  // deserialize replaces contents
}

TEST(MemoryIndex, DeserializeRejectsTruncatedHeader) {
  MemoryChunkIndex idx;
  EXPECT_THROW(idx.deserialize(ByteBuffer(4)), FormatError);
}

TEST(MemoryIndex, DeserializeRejectsTruncatedEntry) {
  MemoryChunkIndex idx;
  idx.insert(digest_of(1), {});
  ByteBuffer image = idx.serialize();
  image.resize(image.size() - 3);  // chop the last entry
  MemoryChunkIndex fresh;
  EXPECT_THROW(fresh.deserialize(image), FormatError);
}

TEST(MemoryIndex, DeserializeRejectsTrailingGarbage) {
  MemoryChunkIndex idx;
  idx.insert(digest_of(1), {});
  ByteBuffer image = idx.serialize();
  image.push_back(std::byte{0xee});
  MemoryChunkIndex fresh;
  EXPECT_THROW(fresh.deserialize(image), FormatError);
}

TEST(MemoryIndex, DeserializeRejectsBadDigestSize) {
  ByteBuffer image;
  append_le64(image, 1);
  image.push_back(std::byte{77});  // digest size 77 > kMaxSize
  image.resize(image.size() + 93, std::byte{0});
  MemoryChunkIndex idx;
  EXPECT_THROW(idx.deserialize(image), FormatError);
}

TEST(MemoryIndex, LookupBatchMatchesSingleLookups) {
  MemoryChunkIndex idx;
  for (int i = 0; i < 40; ++i) {
    idx.insert(digest_of(i), ChunkLocation{static_cast<std::uint64_t>(i),
                                           static_cast<std::uint32_t>(i), 1});
  }
  std::vector<hash::Digest> digests;
  for (int i = 0; i < 80; ++i) digests.push_back(digest_of(i));
  std::vector<std::optional<ChunkLocation>> found;
  idx.lookup_batch(digests, found);
  ASSERT_EQ(found.size(), digests.size());
  for (std::size_t i = 0; i < 80; ++i) {
    EXPECT_EQ(found[i].has_value(), i < 40) << i;
  }
  const IndexStats s = idx.stats();
  EXPECT_EQ(s.lookups, 80u);
  EXPECT_EQ(s.hits, 40u);
}

TEST(MemoryIndex, CheckpointBaseThenDeltas) {
  MemoryChunkIndex producer;
  MemoryChunkIndex consumer;
  for (int i = 0; i < 10; ++i) producer.insert(digest_of(i), {});

  BufferCheckpointSink base;
  producer.checkpoint(base);
  EXPECT_EQ(base.records(), 1u);  // one full base record
  BufferCheckpointSource base_source(base.buffer());
  consumer.restore(base_source);
  EXPECT_EQ(consumer.size(), 10u);

  producer.insert(digest_of(10), ChunkLocation{4, 2, 9});
  producer.remove(digest_of(0));
  producer.update(digest_of(1), ChunkLocation{8, 8, 8});
  BufferCheckpointSink delta;
  producer.checkpoint(delta);
  EXPECT_EQ(delta.records(), 3u);  // only the mutations since the base
  BufferCheckpointSource delta_source(delta.buffer());
  consumer.restore(delta_source);

  EXPECT_EQ(consumer.size(), 10u);
  EXPECT_EQ(consumer.lookup(digest_of(10))->container_id, 4u);
  EXPECT_FALSE(consumer.lookup(digest_of(0)).has_value());
  EXPECT_EQ(consumer.lookup(digest_of(1))->offset, 8u);
}

TEST(MemoryIndex, CheckpointFullLeavesDeltaChainUndisturbed) {
  MemoryChunkIndex producer;
  for (int i = 0; i < 5; ++i) producer.insert(digest_of(i), {});
  BufferCheckpointSink base;
  producer.checkpoint(base);
  producer.insert(digest_of(5), {});

  // A full snapshot (export_state path) must not consume the journal...
  BufferCheckpointSink full;
  producer.checkpoint_full(full);
  EXPECT_EQ(full.records(), 1u);

  // ...so the next incremental checkpoint still carries the delta.
  BufferCheckpointSink delta;
  producer.checkpoint(delta);
  EXPECT_EQ(delta.records(), 1u);
}

TEST(MemoryIndex, RestoreRejectsUnknownOpcode) {
  BufferCheckpointSink sink;
  const ByteBuffer record(3, std::byte{0x7f});  // opcode 0x7f is undefined
  sink.write(record);
  MemoryChunkIndex idx;
  BufferCheckpointSource source(sink.buffer());
  EXPECT_THROW(idx.restore(source), FormatError);
}

TEST(MemoryIndex, ConcurrentInsertLookupIsSafe) {
  MemoryChunkIndex idx;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int key = t * kPerThread + i;
        idx.insert(digest_of(key),
                   ChunkLocation{static_cast<std::uint64_t>(key), 0, 1});
        idx.lookup(digest_of(key / 2));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.size(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace aadedupe::index
