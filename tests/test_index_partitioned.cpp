// Application-aware partitioned index tests: shard isolation, aggregate
// stats, serialization of all shards, and concurrent shard access — the
// parallelism Observation 2 enables.
#include "index/partitioned_index.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "hash/sha1.hpp"
#include "index/checkpoint.hpp"
#include "index/memory_index.hpp"
#include "util/check.hpp"

namespace aadedupe::index {
namespace {

hash::Digest digest_of(const std::string& s) {
  return hash::Sha1::hash(as_bytes(s));
}

TEST(PartitionedIndex, ShardsAreIndependent) {
  PartitionedIndex idx;
  const auto d = digest_of("shared-fingerprint");
  idx.shard("doc").insert(d, ChunkLocation{1, 0, 8});
  // The same fingerprint is unknown to every other shard: partitions are
  // fully independent indices (Fig. 6).
  EXPECT_TRUE(idx.shard("doc").lookup(d).has_value());
  EXPECT_FALSE(idx.shard("mp3").lookup(d).has_value());
  EXPECT_FALSE(idx.shard("vmdk").lookup(d).has_value());
}

TEST(PartitionedIndex, PartitionsListedSorted) {
  PartitionedIndex idx;
  idx.shard("vmdk");
  idx.shard("avi");
  idx.shard("doc");
  const auto keys = idx.partitions();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "avi");
  EXPECT_EQ(keys[1], "doc");
  EXPECT_EQ(keys[2], "vmdk");
}

TEST(PartitionedIndex, SameKeyReturnsSameShard) {
  PartitionedIndex idx;
  ChunkIndex& a = idx.shard("txt");
  ChunkIndex& b = idx.shard("txt");
  EXPECT_EQ(&a, &b);
}

TEST(PartitionedIndex, TotalsAggregateAcrossShards) {
  PartitionedIndex idx;
  idx.shard("a").insert(digest_of("1"), {});
  idx.shard("a").insert(digest_of("2"), {});
  idx.shard("b").insert(digest_of("3"), {});
  idx.shard("a").lookup(digest_of("1"));
  idx.shard("b").lookup(digest_of("nope"));

  EXPECT_EQ(idx.total_size(), 3u);
  const IndexStats s = idx.total_stats();
  EXPECT_EQ(s.inserts, 3u);
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(PartitionedIndex, SerializeRoundTripAllShards) {
  PartitionedIndex idx;
  for (const std::string part : {"doc", "ppt", "vmdk"}) {
    for (int i = 0; i < 50; ++i) {
      idx.shard(part).insert(
          digest_of(part + std::to_string(i)),
          ChunkLocation{static_cast<std::uint64_t>(i), 0, 8});
    }
  }
  const ByteBuffer image = idx.serialize();

  PartitionedIndex restored;
  restored.deserialize(image);
  EXPECT_EQ(restored.total_size(), 150u);
  EXPECT_EQ(restored.partitions(), idx.partitions());
  EXPECT_TRUE(restored.shard("ppt").lookup(digest_of("ppt7")).has_value());
  EXPECT_FALSE(restored.shard("doc").lookup(digest_of("ppt7")).has_value());
}

TEST(PartitionedIndex, SerializeEmpty) {
  PartitionedIndex idx;
  PartitionedIndex restored;
  restored.shard("junk").insert(digest_of("x"), {});
  restored.deserialize(idx.serialize());
  EXPECT_EQ(restored.total_size(), 0u);
  EXPECT_TRUE(restored.partitions().empty());
}

TEST(PartitionedIndex, DeserializeRejectsTruncation) {
  PartitionedIndex idx;
  idx.shard("doc").insert(digest_of("1"), {});
  ByteBuffer image = idx.serialize();
  image.resize(image.size() - 1);
  PartitionedIndex fresh;
  EXPECT_THROW(fresh.deserialize(image), FormatError);
}

TEST(PartitionedIndex, DeserializeRejectsTrailingBytes) {
  PartitionedIndex idx;
  idx.shard("doc").insert(digest_of("1"), {});
  ByteBuffer image = idx.serialize();
  image.push_back(std::byte{1});
  PartitionedIndex fresh;
  EXPECT_THROW(fresh.deserialize(image), FormatError);
}

TEST(PartitionedIndex, CustomFactoryIsUsed) {
  int created = 0;
  PartitionedIndex idx([&created](const std::string&) {
    ++created;
    return std::make_unique<MemoryChunkIndex>();
  });
  idx.shard("a");
  idx.shard("b");
  idx.shard("a");
  EXPECT_EQ(created, 2);
}

TEST(PartitionedIndex, CheckpointRoundTripAllShards) {
  PartitionedIndex idx;
  for (const std::string part : {"doc", "ppt", "vmdk"}) {
    for (int i = 0; i < 50; ++i) {
      idx.shard(part).insert(
          digest_of(part + std::to_string(i)),
          ChunkLocation{static_cast<std::uint64_t>(i), 0, 8});
    }
  }
  BufferCheckpointSink sink;
  idx.checkpoint(sink);

  PartitionedIndex restored;
  restored.shard("junk").insert(digest_of("x"), {});  // dropped by kReset
  BufferCheckpointSource source(sink.buffer());
  restored.restore(source);
  EXPECT_EQ(restored.total_size(), 150u);
  EXPECT_EQ(restored.partitions(), idx.partitions());
  EXPECT_TRUE(restored.shard("ppt").lookup(digest_of("ppt7")).has_value());
  EXPECT_FALSE(restored.shard("doc").lookup(digest_of("ppt7")).has_value());
}

TEST(PartitionedIndex, CheckpointChainShipsShardDeltas) {
  PartitionedIndex producer;
  PartitionedIndex consumer;
  for (int i = 0; i < 20; ++i) {
    std::string key = std::to_string(i);
    key += "-doc";
    producer.shard("doc").insert(digest_of(key), {});
  }
  BufferCheckpointSink base;
  producer.checkpoint(base);
  {
    BufferCheckpointSource source(base.buffer());
    consumer.restore(source);
  }
  EXPECT_EQ(consumer.total_size(), 20u);

  // Delta: a few inserts across two shards — no kReset, no full bases.
  producer.shard("doc").insert(digest_of("d-new"), ChunkLocation{5, 0, 1});
  producer.shard("mp3").insert(digest_of("m-new"), ChunkLocation{6, 0, 1});
  BufferCheckpointSink delta;
  producer.checkpoint(delta);
  {
    BufferCheckpointSource source(delta.buffer());
    consumer.restore(source);
  }
  EXPECT_EQ(consumer.total_size(), 22u);
  EXPECT_TRUE(consumer.shard("mp3").lookup(digest_of("m-new")).has_value());
  // The delta stream is far smaller than a fresh base would be.
  EXPECT_LT(delta.buffer().size(), base.buffer().size() / 4);
}

TEST(PartitionedIndex, ClearRearmsTheCheckpointChain) {
  PartitionedIndex producer;
  PartitionedIndex consumer;
  producer.shard("doc").insert(digest_of("old"), {});
  BufferCheckpointSink base;
  producer.checkpoint(base);
  {
    BufferCheckpointSource source(base.buffer());
    consumer.restore(source);
  }

  // Rebuild from scratch (the GC path): the next checkpoint must ship
  // kReset + fresh bases so the consumer drops pre-clear fingerprints.
  producer.clear();
  producer.shard("mp3").insert(digest_of("fresh"), {});
  BufferCheckpointSink rebase;
  producer.checkpoint(rebase);
  {
    BufferCheckpointSource source(rebase.buffer());
    consumer.restore(source);
  }
  EXPECT_EQ(consumer.total_size(), 1u);
  EXPECT_FALSE(consumer.shard("doc").lookup(digest_of("old")).has_value());
  EXPECT_TRUE(consumer.shard("mp3").lookup(digest_of("fresh")).has_value());
}

TEST(PartitionedIndex, RestoreRejectsMalformedStream) {
  PartitionedIndex idx;
  idx.shard("doc").insert(digest_of("1"), {});
  BufferCheckpointSink sink;
  idx.checkpoint(sink);
  ByteBuffer stream = sink.take();
  stream.resize(stream.size() - 2);  // torn final record

  PartitionedIndex fresh;
  fresh.shard("keep").insert(digest_of("2"), {});
  BufferCheckpointSource source(stream);
  EXPECT_THROW(fresh.restore(source), FormatError);
  // Validation happens before any mutation: existing state is untouched.
  EXPECT_EQ(fresh.total_size(), 1u);
}

TEST(PartitionedIndex, ConcurrentShardLookupsAreSafe) {
  PartitionedIndex idx;
  const std::vector<std::string> parts = {"avi", "mp3", "doc", "txt",
                                          "ppt", "pdf", "exe", "vmdk"};
  // Pre-create shards, then hammer them from one thread per partition —
  // the access pattern of parallel per-application dedup.
  for (const auto& p : parts) idx.shard(p);

  std::vector<std::thread> threads;
  for (const auto& p : parts) {
    threads.emplace_back([&idx, p] {
      ChunkIndex& shard = idx.shard(p);
      for (int i = 0; i < 5000; ++i) {
        const auto d = digest_of(p + std::to_string(i));
        shard.insert(d, ChunkLocation{static_cast<std::uint64_t>(i), 0, 1});
        ASSERT_TRUE(shard.lookup(d).has_value());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(idx.total_size(), parts.size() * 5000u);
}

}  // namespace
}  // namespace aadedupe::index
