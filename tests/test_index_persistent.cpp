// Persistent on-disk chunk index tests: durability across reopen, growth,
// cache behaviour, corrupt-file rejection.
#include "index/persistent_index.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "hash/sha1.hpp"
#include "util/check.hpp"

namespace aadedupe::index {
namespace {

namespace fs = std::filesystem;

class PersistentIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("aad_idx_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name = "index.bin") const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

hash::Digest digest_of(int i) {
  return hash::Sha1::hash(as_bytes("entry-" + std::to_string(i)));
}

TEST_F(PersistentIndexTest, InsertLookupBasic) {
  PersistentChunkIndex idx(path());
  const auto d = digest_of(1);
  EXPECT_FALSE(idx.lookup(d).has_value());
  EXPECT_TRUE(idx.insert(d, ChunkLocation{3, 4, 5}));
  const auto loc = idx.lookup(d);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->container_id, 3u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST_F(PersistentIndexTest, DuplicateInsertReturnsFalse) {
  PersistentChunkIndex idx(path());
  EXPECT_TRUE(idx.insert(digest_of(1), {}));
  EXPECT_FALSE(idx.insert(digest_of(1), ChunkLocation{9, 9, 9}));
  EXPECT_EQ(idx.size(), 1u);
}

TEST_F(PersistentIndexTest, SurvivesReopen) {
  {
    PersistentChunkIndex idx(path());
    for (int i = 0; i < 200; ++i) {
      idx.insert(digest_of(i),
                 ChunkLocation{static_cast<std::uint64_t>(i),
                               static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(i + 1)});
    }
    idx.flush();
  }
  PersistentChunkIndex reopened(path());
  EXPECT_EQ(reopened.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    const auto loc = reopened.lookup(digest_of(i));
    ASSERT_TRUE(loc.has_value()) << i;
    EXPECT_EQ(loc->length, static_cast<std::uint32_t>(i + 1));
  }
}

TEST_F(PersistentIndexTest, GrowsBeyondInitialSlots) {
  PersistentChunkIndex::Options opts;
  opts.initial_slots = 8;
  opts.cache_entries = 0;  // force every probe to disk
  PersistentChunkIndex idx(path(), opts);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(idx.insert(digest_of(i),
                           ChunkLocation{static_cast<std::uint64_t>(i), 0, 1}));
  }
  EXPECT_EQ(idx.size(), 500u);
  EXPECT_GT(idx.slot_count(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(idx.lookup(digest_of(i)).has_value()) << i;
  }
}

TEST_F(PersistentIndexTest, CacheCutsDiskReadsOnRepeatedLookups) {
  PersistentChunkIndex::Options opts;
  opts.initial_slots = 64;
  opts.cache_entries = 1024;
  PersistentChunkIndex idx(path(), opts);
  idx.insert(digest_of(1), {});

  idx.lookup(digest_of(1));  // may hit cache (filled by insert)
  const std::uint64_t reads_before = idx.stats().disk_reads;
  for (int i = 0; i < 100; ++i) idx.lookup(digest_of(1));
  EXPECT_EQ(idx.stats().disk_reads, reads_before)
      << "repeated lookups of a cached entry must not touch the file";
}

TEST_F(PersistentIndexTest, NoCacheMeansEveryLookupReadsDisk) {
  PersistentChunkIndex::Options opts;
  opts.initial_slots = 64;
  opts.cache_entries = 0;
  PersistentChunkIndex idx(path(), opts);
  idx.insert(digest_of(1), {});
  const std::uint64_t reads_before = idx.stats().disk_reads;
  for (int i = 0; i < 10; ++i) idx.lookup(digest_of(1));
  EXPECT_GE(idx.stats().disk_reads, reads_before + 10);
}

TEST_F(PersistentIndexTest, MissOnEmptyTableIsCheap) {
  PersistentChunkIndex idx(path());
  EXPECT_FALSE(idx.lookup(digest_of(42)).has_value());
  const IndexStats s = idx.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.lookups, 1u);
}

TEST_F(PersistentIndexTest, SerializeDeserializeRoundTrip) {
  PersistentChunkIndex idx(path("a.bin"));
  for (int i = 0; i < 150; ++i) {
    idx.insert(digest_of(i), ChunkLocation{static_cast<std::uint64_t>(i), 1, 2});
  }
  const ByteBuffer image = idx.serialize();

  PersistentChunkIndex other(path("b.bin"));
  other.insert(digest_of(9999), {});
  other.deserialize(image);
  EXPECT_EQ(other.size(), 150u);
  EXPECT_FALSE(other.lookup(digest_of(9999)).has_value());
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(other.lookup(digest_of(i)).has_value()) << i;
  }
}

TEST_F(PersistentIndexTest, RejectsCorruptMagic) {
  {
    std::ofstream f(path(), std::ios::binary);
    f << "NOTANIDX-file-with-garbage-content-..............";
  }
  EXPECT_THROW(PersistentChunkIndex{path()}, FormatError);
}

TEST_F(PersistentIndexTest, RejectsCorruptHeaderCounts) {
  {
    PersistentChunkIndex idx(path());
    idx.insert(digest_of(1), {});
    idx.flush();
  }
  // Overwrite entry_count with a value exceeding slot_count.
  std::fstream f(path(), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(16);
  const std::uint64_t bogus = ~std::uint64_t{0};
  f.write(reinterpret_cast<const char*>(&bogus), 8);
  f.close();
  EXPECT_THROW(PersistentChunkIndex{path()}, FormatError);
}

TEST_F(PersistentIndexTest, RejectsTinyInitialSlots) {
  PersistentChunkIndex::Options opts;
  opts.initial_slots = 4;
  EXPECT_THROW(PersistentChunkIndex(path(), opts), PreconditionError);
}

TEST_F(PersistentIndexTest, SimulatedLatencyChargesSimulatedClock) {
  // Modeled seek time is charged to the simulated transfer clock — the
  // internal accumulator by default — instead of busy-waiting wall time.
  PersistentChunkIndex::Options slow;
  slow.initial_slots = 64;
  slow.cache_entries = 0;
  slow.simulated_read_latency_us = 2000;
  PersistentChunkIndex idx(path(), slow);
  idx.insert(digest_of(1), {});

  const double before = idx.simulated_read_seconds();
  for (int i = 0; i < 5; ++i) idx.lookup(digest_of(1));
  // Each lookup reads at least one slot from the file (cache disabled).
  EXPECT_GE(idx.simulated_read_seconds() - before, 5 * 0.002);
}

TEST_F(PersistentIndexTest, SimulatedLatencyRoutesToSink) {
  PersistentChunkIndex::Options slow;
  slow.initial_slots = 64;
  slow.cache_entries = 0;
  slow.simulated_read_latency_us = 2000;
  double charged = 0.0;
  slow.latency_sink = [&charged](double seconds) { charged += seconds; };
  PersistentChunkIndex idx(path(), slow);
  idx.insert(digest_of(1), {});

  for (int i = 0; i < 5; ++i) idx.lookup(digest_of(1));
  EXPECT_GE(charged, 5 * 0.002);
  // With a sink installed, nothing accumulates internally.
  EXPECT_EQ(idx.simulated_read_seconds(), 0.0);
}

TEST_F(PersistentIndexTest, LookupBatchMatchesSingleLookups) {
  PersistentChunkIndex idx(path());
  for (int i = 0; i < 50; ++i) {
    idx.insert(digest_of(i), ChunkLocation{static_cast<std::uint64_t>(i),
                                           static_cast<std::uint32_t>(i), 1});
  }
  std::vector<hash::Digest> digests;
  for (int i = 0; i < 100; ++i) digests.push_back(digest_of(i));
  std::vector<std::optional<ChunkLocation>> found;
  idx.lookup_batch(digests, found);
  ASSERT_EQ(found.size(), digests.size());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(found[i].has_value(), i < 50) << i;
    if (found[i]) {
      EXPECT_EQ(found[i]->container_id, static_cast<std::uint64_t>(i));
    }
  }
}

}  // namespace
}  // namespace aadedupe::index
