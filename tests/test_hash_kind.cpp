// HashKind dispatch tests.
#include "hash/hash_kind.hpp"

#include <gtest/gtest.h>

namespace aadedupe::hash {
namespace {

TEST(HashKind, DigestSizesMatchFamilies) {
  EXPECT_EQ(digest_size(HashKind::kRabin96), 12u);
  EXPECT_EQ(digest_size(HashKind::kMd5), 16u);
  EXPECT_EQ(digest_size(HashKind::kSha1), 20u);
}

TEST(HashKind, ComputeDispatchesToTheRightFamily) {
  const auto data = as_bytes("dispatch-check");
  EXPECT_EQ(compute_digest(HashKind::kMd5, data), Md5::hash(data));
  EXPECT_EQ(compute_digest(HashKind::kSha1, data), Sha1::hash(data));
  EXPECT_EQ(compute_digest(HashKind::kRabin96, data), Rabin96::hash(data));
}

TEST(HashKind, DigestWidthMatchesDeclaredSize) {
  const auto data = as_bytes("width-check");
  for (const HashKind kind :
       {HashKind::kRabin96, HashKind::kMd5, HashKind::kSha1}) {
    EXPECT_EQ(compute_digest(kind, data).size(), digest_size(kind));
  }
}

TEST(HashKind, Names) {
  EXPECT_EQ(to_string(HashKind::kRabin96), "rabin96");
  EXPECT_EQ(to_string(HashKind::kMd5), "md5");
  EXPECT_EQ(to_string(HashKind::kSha1), "sha1");
}

TEST(HashKind, FamiliesDisagreeOnSameInput) {
  const auto data = as_bytes("same-input");
  EXPECT_NE(compute_digest(HashKind::kMd5, data),
            compute_digest(HashKind::kSha1, data));
  EXPECT_NE(compute_digest(HashKind::kMd5, data),
            compute_digest(HashKind::kRabin96, data));
}

}  // namespace
}  // namespace aadedupe::hash
