// Logger tests: severity parsing, runtime-floor filtering, multi-sink
// fan-out, printf formatting/truncation, fake-clock timestamps, the JSONL
// file sink, and the recorder-sees-everything contract.
#include "telemetry/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {
namespace {

/// Sink that copies events into owned storage (LogEvent views are only
/// valid during write()).
struct CaptureSink final : LogSink {
  struct Copy {
    double t_s;
    LogLevel level;
    std::string category;
    std::string message;
  };
  std::vector<Copy> events;

  void write(const LogEvent& event) override {
    events.push_back(Copy{event.t_s, event.level,
                          std::string(event.category),
                          std::string(event.message)});
  }
};

TEST(LogLevelNames, RoundTripAndFallback) {
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    const std::string name(to_string(level));
    EXPECT_EQ(parse_log_level(name.c_str(), LogLevel::kOff), level) << name;
  }
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("", LogLevel::kDebug), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kError), LogLevel::kError);
  // Spellings are the exact strings to_string emits — case-sensitive.
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kOff), LogLevel::kOff);
}

TEST(Logger, RuntimeFloorFiltersSinkDelivery) {
  Logger logger([] { return 0.0; });
  auto sink = std::make_shared<CaptureSink>();
  logger.add_sink(sink);
  logger.set_level(LogLevel::kWarn);

  logger.log(LogLevel::kDebug, "upload", "below the floor");
  logger.log(LogLevel::kInfo, "upload", "still below");
  logger.log(LogLevel::kWarn, "upload", "at the floor");
  logger.log(LogLevel::kError, "upload", "above the floor");

  ASSERT_EQ(sink->events.size(), 2u);
  EXPECT_EQ(sink->events[0].message, "at the floor");
  EXPECT_EQ(sink->events[1].level, LogLevel::kError);

  logger.set_level(LogLevel::kOff);
  logger.log(LogLevel::kError, "upload", "silenced");
  EXPECT_EQ(sink->events.size(), 2u);
}

TEST(Logger, FansOutToEverySink) {
  Logger logger([] { return 1.5; });
  auto a = std::make_shared<CaptureSink>();
  auto b = std::make_shared<CaptureSink>();
  logger.add_sink(a);
  logger.add_sink(b);
  EXPECT_EQ(logger.sink_count(), 2u);

  logger.log(LogLevel::kInfo, "session", "hello");
  ASSERT_EQ(a->events.size(), 1u);
  ASSERT_EQ(b->events.size(), 1u);
  EXPECT_EQ(a->events[0].category, "session");
  EXPECT_DOUBLE_EQ(b->events[0].t_s, 1.5);

  logger.clear_sinks();
  EXPECT_EQ(logger.sink_count(), 0u);
  logger.log(LogLevel::kInfo, "session", "dropped");
  EXPECT_EQ(a->events.size(), 1u);
}

TEST(Logger, EnabledReflectsSinksLevelAndRecorder) {
  Logger logger;
  // No sinks, no recorder: nothing is enabled.
  EXPECT_FALSE(logger.enabled(LogLevel::kError));

  logger.add_sink(std::make_shared<CaptureSink>());
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));

  // An attached recorder wants every event regardless of the sink floor.
  FlightRecorder recorder;
  logger.set_flight_recorder(&recorder);
  EXPECT_TRUE(logger.enabled(LogLevel::kTrace));
  logger.set_flight_recorder(nullptr);
  EXPECT_FALSE(logger.enabled(LogLevel::kTrace));
}

TEST(Logger, RecorderSeesEventsBelowTheSinkFloor) {
  FlightRecorder recorder;
  Logger logger([] { return 2.0; });
  auto sink = std::make_shared<CaptureSink>();
  logger.add_sink(sink);
  logger.set_level(LogLevel::kError);
  logger.set_flight_recorder(&recorder);

  logger.log(LogLevel::kDebug, "chunk", "sink-silent, recorder-visible");
  EXPECT_TRUE(sink->events.empty());

  JsonValue flight;
  recorder.fill_json(flight);
  const std::string dumped = flight.dump(0);
  EXPECT_NE(dumped.find("sink-silent, recorder-visible"), std::string::npos)
      << dumped;
  EXPECT_NE(dumped.find("\"chunk\""), std::string::npos) << dumped;
}

TEST(Logger, LogfFormatsAndTruncates) {
  Logger logger([] { return 0.0; });
  auto sink = std::make_shared<CaptureSink>();
  logger.add_sink(sink);

  logger.logf(LogLevel::kInfo, "upload", "shipped %d bytes to %s", 42,
              "cloud");
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].message, "shipped 42 bytes to cloud");

  const std::string longer(1000, 'x');
  logger.logf(LogLevel::kInfo, "upload", "%s", longer.c_str());
  ASSERT_EQ(sink->events.size(), 2u);
  // Bounded stack buffer: truncated, never allocated, never overflowing.
  EXPECT_LT(sink->events[1].message.size(), 512u);
  EXPECT_EQ(sink->events[1].message.substr(0, 8), "xxxxxxxx");
}

TEST(Logger, SetClockRestampsEvents) {
  Logger logger;
  double now = 7.25;
  logger.set_clock([&now] { return now; });
  auto sink = std::make_shared<CaptureSink>();
  logger.add_sink(sink);
  logger.log(LogLevel::kInfo, "session", "t0");
  now = 8.0;
  logger.log(LogLevel::kInfo, "session", "t1");
  ASSERT_EQ(sink->events.size(), 2u);
  EXPECT_DOUBLE_EQ(sink->events[0].t_s, 7.25);
  EXPECT_DOUBLE_EQ(sink->events[1].t_s, 8.0);
}

TEST(JsonlFileSink, WritesOneObjectPerLine) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "aad_test_log_sink.jsonl";
  std::filesystem::remove(path);
  {
    Logger logger([] { return 0.5; });
    logger.add_sink(make_jsonl_file_sink(path.string()));
    logger.log(LogLevel::kWarn, "retry_wait", "backing \"off\"");
    logger.log(LogLevel::kInfo, "upload", "second line");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("\"level\":\"warn\""), std::string::npos) << line1;
  EXPECT_NE(line1.find("\"category\":\"retry_wait\""), std::string::npos);
  // Quotes in the message must be escaped, or the line is not JSON.
  EXPECT_NE(line1.find("backing \\\"off\\\""), std::string::npos) << line1;
  EXPECT_NE(line2.find("\"message\":\"second line\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(JsonlFileSink, ThrowsWhenUnopenable) {
  EXPECT_THROW((void)make_jsonl_file_sink("/nonexistent-dir/x/y.jsonl"),
               FormatError);
}

TEST(LogMacro, NullLoggerAndDisabledLoggerAreNoOps) {
  Logger* null_logger = nullptr;
  AAD_LOG(null_logger, kError, "session", "never formatted %d", 1);

  Logger logger;
  auto sink = std::make_shared<CaptureSink>();
  logger.add_sink(sink);
  logger.set_level(LogLevel::kWarn);
  AAD_LOG(&logger, kDebug, "session", "filtered out");
  EXPECT_TRUE(sink->events.empty());
  AAD_LOG(&logger, kError, "session", "count=%d", 3);
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].message, "count=3");
}

TEST(LogMacro, CompileTimeFloorPredicate) {
  static_assert(log_level_passes_floor(LogLevel::kTrace, 0));
  static_assert(!log_level_passes_floor(LogLevel::kTrace, 1));
  static_assert(log_level_passes_floor(LogLevel::kError, 4));
  static_assert(!log_level_passes_floor(LogLevel::kWarn, 4));
}

TEST(StderrLogger, SingletonHonorsRuntimeLevelApi) {
  Logger& logger = stderr_logger();
  EXPECT_EQ(&logger, &stderr_logger());
  EXPECT_GE(logger.sink_count(), 1u);
}

}  // namespace
}  // namespace aadedupe::telemetry
