// End-to-end fault tolerance: every backup scheme must survive an
// unreliable WAN. With 5% transient failures on both paths and the default
// retry budget, a 3-session backup must complete with byte-exact restores
// — and for AA-Dedupe, a clean scrub. With retries disabled, failures must
// surface as typed errors, never as silent data loss or an abort.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backup/chunk_level.hpp"
#include "backup/file_level.hpp"
#include "backup/full_backup.hpp"
#include "backup/incremental.hpp"
#include "backup/sam.hpp"
#include "backup/target_dedupe.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe {
namespace {

constexpr std::uint64_t kFaultSeed = 20110926;  // CLUSTER'11 week, why not

dataset::DatasetConfig small_config(std::uint64_t bytes = 3ull << 20) {
  dataset::DatasetConfig config;
  config.seed = 17;
  config.session_bytes = bytes;
  config.max_file_bytes = 1 << 20;
  return config;
}

std::unique_ptr<backup::BackupScheme> make_scheme(const std::string& name,
                                                  cloud::CloudTarget& target) {
  if (name == "full") return std::make_unique<backup::FullBackupScheme>(target);
  if (name == "incremental")
    return std::make_unique<backup::IncrementalScheme>(target);
  if (name == "file") return std::make_unique<backup::FileLevelScheme>(target);
  if (name == "chunk")
    return std::make_unique<backup::ChunkLevelScheme>(target);
  if (name == "sam") return std::make_unique<backup::SamScheme>(target);
  if (name == "target")
    return std::make_unique<backup::TargetDedupeScheme>(target);
  // Sequential AA: with parallel streams the container-id → content
  // assignment varies with thread timing, so the (key, attempt) pairs
  // drawn against the fault schedule — and hence the injected-fault count
  // this test asserts on — would differ run to run. Fault determinism
  // under reordering is covered by test_fault_injection.
  core::AaDedupeOptions options;
  options.parallel = false;
  return std::make_unique<core::AaDedupeScheme>(target, options);
}

class FaultySchemes : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultySchemes, ThreeSessionsSurviveFivePercentTransientFaults) {
  cloud::CloudTarget target;
  target.inject_faults(cloud::FaultProfile::transient(0.05), kFaultSeed);
  auto scheme = make_scheme(GetParam(), target);

  dataset::DatasetGenerator gen(small_config());
  const auto sessions = gen.sessions(3);
  for (const auto& snapshot : sessions) scheme->backup(snapshot);

  // The link really was hostile (faults fired, retries absorbed them).
  EXPECT_GT(target.injected_fault_total(), 0u);
  EXPECT_GT(target.retrier().retries(), 0u);
  EXPECT_EQ(target.retrier().exhausted(), 0u)
      << "5% transient should never outlast the default retry budget";

  // Every sampled file restores byte-exactly through the same faulty link.
  const dataset::Snapshot& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 5 < last.files.size() ? std::size_t{5} : std::size_t{1})) {
    const dataset::FileEntry& file = last.files[i];
    const ByteBuffer expected = dataset::materialize(file.content);
    const ByteBuffer restored = scheme->restore_file(file.path);
    ASSERT_EQ(restored, expected) << file.path;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, FaultySchemes,
                         ::testing::Values("full", "incremental", "file",
                                           "chunk", "sam", "target", "aa"));

TEST(FaultTolerance, AaScrubStaysCleanUnderFaults) {
  cloud::CloudTarget target;
  target.inject_faults(cloud::FaultProfile::transient(0.05), kFaultSeed);
  core::AaDedupeScheme scheme(target);

  dataset::DatasetGenerator gen(small_config(2ull << 20));
  const auto sessions = gen.sessions(3);
  for (const auto& snapshot : sessions) scheme.backup(snapshot);

  EXPECT_TRUE(scheme.pending_uploads().empty());
  const auto report = scheme.scrub();
  EXPECT_TRUE(report.clean())
      << "missing=" << report.missing_containers
      << " corrupt=" << report.corrupt_chunks
      << " transport=" << report.transport_errors;
  EXPECT_GT(report.chunks_checked, 0u);
}

TEST(FaultTolerance, RetriesDisabledSurfaceTypedErrorNotSilentLoss) {
  // Schemes without a journal propagate the typed error out of backup().
  cloud::CloudTarget target;
  target.set_retry_policy(cloud::RetryPolicy::none());
  target.inject_faults(cloud::FaultProfile::transient(1.0), kFaultSeed);
  backup::FullBackupScheme scheme(target);

  dataset::DatasetGenerator gen(small_config(1ull << 20));
  try {
    scheme.backup(gen.initial());
    FAIL() << "backup over a dead link must not report success";
  } catch (const cloud::CloudTransportError& error) {
    EXPECT_EQ(error.error(), cloud::CloudError::kTransient);
    EXPECT_FALSE(error.key().empty());
  }
}

TEST(FaultTolerance, AaJournalsTerminalFailuresAndReplaysNextSession) {
  // Graceful degradation: with retries disabled and a badly lossy uplink,
  // AA-Dedupe finishes the session anyway, parking what would not ship.
  cloud::CloudTarget target;
  target.set_retry_policy(cloud::RetryPolicy::none());
  cloud::FaultProfile profile;
  profile.put_transient_p = 0.7;  // uplink only; downloads stay clean
  target.inject_faults(profile, kFaultSeed);

  core::AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(small_config(2ull << 20));
  const auto sessions = gen.sessions(2);

  EXPECT_NO_THROW(scheme.backup(sessions[0]));
  EXPECT_FALSE(scheme.pending_uploads().empty())
      << "a 70% uplink loss with no retries must strand some uploads";

  // The journal survives a process restart with the rest of the state.
  const ByteBuffer state = scheme.export_state();
  core::AaDedupeScheme resumed(target);
  resumed.import_state(state);
  EXPECT_EQ(resumed.pending_uploads().size(), scheme.pending_uploads().size());

  // Link heals; the next session replays the journal before new work.
  target.clear_faults();
  target.set_retry_policy(cloud::RetryPolicy{});
  resumed.backup(sessions[1]);
  EXPECT_TRUE(resumed.pending_uploads().empty());

  // With the debt shipped, every retained session is whole again.
  const auto retained = resumed.restorable_sessions();
  ASSERT_EQ(retained.size(), 2u);
  for (const std::uint32_t session : retained) {
    EXPECT_TRUE(resumed.scrub(session).clean()) << "session " << session;
  }
  const dataset::Snapshot& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 9 < last.files.size() ? std::size_t{9} : std::size_t{1})) {
    const dataset::FileEntry& file = last.files[i];
    ASSERT_EQ(resumed.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
}

TEST(FaultTolerance, BackupWindowWidensOnUnreliableLink) {
  // The whole point of simulated backoff: an unreliable WAN shows up in
  // the paper's backup-window metric instead of in test wall time.
  const auto transfer_time = [](double fault_p) {
    cloud::CloudTarget target;
    if (fault_p > 0) {
      target.inject_faults(cloud::FaultProfile::transient(fault_p),
                           kFaultSeed);
    }
    backup::FullBackupScheme scheme(target);
    dataset::DatasetGenerator gen(small_config(2ull << 20));
    const auto report = scheme.backup(gen.initial());
    return report.transfer_seconds;
  };
  EXPECT_GT(transfer_time(0.10), transfer_time(0.0));
}

}  // namespace
}  // namespace aadedupe
