// ChaCha20 conformance tests against RFC 8439 vectors.
#include "crypto/chacha20.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace aadedupe::crypto {
namespace {

ChaChaKey key_0_to_31() {
  ChaChaKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::byte>(i);
  }
  return key;
}

TEST(ChaCha20, Rfc8439BlockFunctionVector) {
  // RFC 8439 section 2.3.2: key 00..1f, nonce 000000090000004a00000000,
  // counter 1.
  const ChaChaKey key = key_0_to_31();
  ChaChaNonce nonce{};
  nonce[3] = std::byte{0x09};
  nonce[7] = std::byte{0x4a};

  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex(ConstByteSpan{block.data(), block.size()}),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 section 2.4.2: the "sunscreen" plaintext.
  const ChaChaKey key = key_0_to_31();
  ChaChaNonce nonce{};
  nonce[7] = std::byte{0x4a};

  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  ByteBuffer data = to_buffer(plaintext);
  chacha20_xor(key, nonce, /*initial_counter=*/1, data);

  EXPECT_EQ(to_hex(ConstByteSpan{data.data(), 32}),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Full-length check on the tail too.
  EXPECT_EQ(to_hex(ConstByteSpan{data.data() + data.size() - 10, 10}),
            "b40b8eedf2785e42874d");
}

TEST(ChaCha20, XorIsAnInvolution) {
  const ChaChaKey key = key_0_to_31();
  const ChaChaNonce nonce{};
  ByteBuffer data(1000);
  Xoshiro256 rng(1);
  rng.fill(data);
  const ByteBuffer original = data;

  chacha20_xor(key, nonce, 0, data);
  EXPECT_NE(data, original);
  chacha20_xor(key, nonce, 0, data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, CounterAdvancesAcrossBlocks) {
  // Encrypting 128 bytes at counter 0 must equal encrypting two 64-byte
  // halves at counters 0 and 1.
  const ChaChaKey key = key_0_to_31();
  const ChaChaNonce nonce{};
  ByteBuffer whole(128, std::byte{0});
  chacha20_xor(key, nonce, 0, whole);

  ByteBuffer first(64, std::byte{0}), second(64, std::byte{0});
  chacha20_xor(key, nonce, 0, first);
  chacha20_xor(key, nonce, 1, second);
  EXPECT_TRUE(std::equal(first.begin(), first.end(), whole.begin()));
  EXPECT_TRUE(std::equal(second.begin(), second.end(), whole.begin() + 64));
}

TEST(ChaCha20, DifferentKeysAndNoncesDiffer) {
  ChaChaKey key_a = key_0_to_31(), key_b = key_0_to_31();
  key_b[0] = std::byte{0xff};
  ChaChaNonce nonce_a{}, nonce_b{};
  nonce_b[0] = std::byte{0x01};

  ByteBuffer a(64, std::byte{0}), b(64, std::byte{0}), c(64, std::byte{0});
  chacha20_xor(key_a, nonce_a, 0, a);
  chacha20_xor(key_b, nonce_a, 0, b);
  chacha20_xor(key_a, nonce_b, 0, c);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(ChaCha20, PartialBlockLengths) {
  const ChaChaKey key = key_0_to_31();
  const ChaChaNonce nonce{};
  for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{127}, std::size_t{200}}) {
    ByteBuffer data(n, std::byte{0xab});
    const ByteBuffer original = data;
    chacha20_xor(key, nonce, 0, data);
    chacha20_xor(key, nonce, 0, data);
    EXPECT_EQ(data, original) << n;
  }
}

}  // namespace
}  // namespace aadedupe::crypto
