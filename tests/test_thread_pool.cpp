// Unit tests for the thread pool that powers parallel app-stream dedup.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace aadedupe {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForExplicitGrainCoversEveryIndexOnce) {
  ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(
        hits.size(), [&](std::size_t i) { ++hits[i]; }, grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPool, ParallelForGrainOneBalancesSkewedWork) {
  // One expensive index among many cheap ones: with grain 1 no worker can
  // claim (and strand) cheap indexes behind the expensive one, so every
  // index still runs exactly once and the call completes.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(
      hits.size(),
      [&](std::size_t i) {
        if (i == 0) {
          std::atomic<int> spin{0};
          while (spin.fetch_add(1, std::memory_order_relaxed) < 2000000) {
          }
        }
        ++hits[i];
      },
      1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("idx 37");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForExceptionDoesNotDeadlockOrLeakWorkers) {
  // A task throwing mid-parallel_for must unwind the call promptly — the
  // remaining chunk tasks notice the error slot is taken and bail — and the
  // pool must stay fully usable for later rounds. Run several rounds to
  // shake out a worker wedged by a previous round's exception.
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(
          200,
          [&](std::size_t i) {
            ++ran;
            if (i == 100) throw std::runtime_error("mid-flight");
          },
          /*grain=*/1);
      FAIL() << "exception was lost in round " << round;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "mid-flight");
    }
    EXPECT_GE(ran.load(), 1);
    // The pool still does useful work after the failed round.
    std::atomic<int> ok{0};
    pool.parallel_for(64, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 64);
  }
}

TEST(ThreadPool, ParallelForEveryTaskThrowingStillReturnsExactlyOne) {
  // All indexes throw: exactly one exception must surface (the first one
  // recorded), not a crash, not a deadlock, not std::terminate.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   128, [](std::size_t) { throw std::logic_error("all"); },
                   /*grain=*/1),
               std::logic_error);
  auto future = pool.submit([] { return 1; });
  EXPECT_EQ(future.get(), 1);
}

TEST(ThreadPool, SubmitAfterFailedParallelForStillRuns) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t) { throw PreconditionError("x"); }),
      PreconditionError);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, RequiresAtLeastOneThread) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(ThreadPool::default_thread_count());
  constexpr std::size_t kN = 100000;
  std::atomic<long long> sum{0};
  pool.parallel_for(kN, [&](std::size_t i) {
    sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

}  // namespace
}  // namespace aadedupe
