// Formatting/clock utility tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/sim_clock.hpp"
#include "util/stopwatch.hpp"
#include "util/units.hpp"

namespace aadedupe {
namespace {

TEST(Units, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0.00 B");
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(10 * 1024 * 1024), "10.0 MiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3.00 GiB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(500.0), "500.0 B/s");
  EXPECT_EQ(format_rate(1500.0), "1.50 KB/s");
  EXPECT_EQ(format_rate(2.5e6), "2.50 MB/s");
  EXPECT_EQ(format_rate(1.2e9), "1.20 GB/s");
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.advance_to(1.0);  // no-op: already past
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.advance_to(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(SimClock, RejectsNegativeAdvance) {
  SimClock clock;
  EXPECT_THROW(clock.advance(-1.0), PreconditionError);
}

TEST(StopWatch, MeasuresElapsedTime) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  watch.reset();
  EXPECT_LT(watch.seconds(), elapsed);
}

TEST(CpuTime, ProcessCpuAdvancesUnderLoad) {
  const double before = process_cpu_seconds();
  std::atomic<std::uint64_t> sink{0};
  for (std::uint64_t i = 0; i < 30'000'000; ++i) {
    sink.fetch_add(i * i, std::memory_order_relaxed);
  }
  EXPECT_GT(process_cpu_seconds(), before);
}

}  // namespace
}  // namespace aadedupe
