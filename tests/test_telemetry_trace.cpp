// Tracer / TraceSpan tests: deterministic self-vs-total accounting with a
// fake clock, direct record() attribution, simulated time, JSONL events,
// and cross-thread aggregation.
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace aadedupe::telemetry {
namespace {

/// Manually-advanced clock shared with the tracer under test.
struct FakeClock {
  double now = 0.0;
  Tracer::Clock fn() {
    return [this] { return now; };
  }
};

StageRow row_of(const Tracer& tracer, Stage stage,
                const std::string& category = {}) {
  const auto rows = tracer.snapshot();
  const auto it = rows.find(StageKey{stage, category});
  return it == rows.end() ? StageRow{} : it->second;
}

TEST(Tracer, NestedSpanSelfTimeExcludesChildren) {
  FakeClock clock;
  Tracer tracer(clock.fn());
  {
    TraceSpan outer(&tracer, Stage::kSession);
    clock.now = 1.0;
    {
      TraceSpan inner(&tracer, Stage::kChunk, "docs");
      clock.now = 3.0;
    }  // inner: wall 2.0
    clock.now = 4.0;
  }  // outer: wall 4.0, self 4.0 - 2.0

  const StageRow outer = row_of(tracer, Stage::kSession);
  EXPECT_EQ(outer.count, 1u);
  EXPECT_DOUBLE_EQ(outer.wall_s, 4.0);
  EXPECT_DOUBLE_EQ(outer.self_s, 2.0);

  const StageRow inner = row_of(tracer, Stage::kChunk, "docs");
  EXPECT_EQ(inner.count, 1u);
  EXPECT_DOUBLE_EQ(inner.wall_s, 2.0);
  EXPECT_DOUBLE_EQ(inner.self_s, 2.0);
}

TEST(Tracer, DoublyNestedSpansChainSelfTime) {
  FakeClock clock;
  Tracer tracer(clock.fn());
  {
    TraceSpan session(&tracer, Stage::kSession);
    {
      TraceSpan chunk(&tracer, Stage::kChunk, "media");
      clock.now = 1.0;
      {
        TraceSpan fp(&tracer, Stage::kFingerprint, "media");
        clock.now = 5.0;
      }  // fp: wall 4
      clock.now = 6.0;
    }  // chunk: wall 6, self 2
    clock.now = 10.0;
  }  // session: wall 10, self 4

  EXPECT_DOUBLE_EQ(row_of(tracer, Stage::kFingerprint, "media").self_s, 4.0);
  EXPECT_DOUBLE_EQ(row_of(tracer, Stage::kChunk, "media").wall_s, 6.0);
  EXPECT_DOUBLE_EQ(row_of(tracer, Stage::kChunk, "media").self_s, 2.0);
  EXPECT_DOUBLE_EQ(row_of(tracer, Stage::kSession).wall_s, 10.0);
  EXPECT_DOUBLE_EQ(row_of(tracer, Stage::kSession).self_s, 4.0);
}

TEST(Tracer, DirectRecordCountsAgainstEnclosingSpan) {
  FakeClock clock;
  Tracer tracer(clock.fn());
  {
    TraceSpan session(&tracer, Stage::kSession);
    clock.now = 10.0;
    // Accumulated per-chunk lookup time recorded as one leaf measurement.
    tracer.record(Stage::kIndexLookup, "docs", 3.0, /*count=*/7);
  }  // session: wall 10, self 10 - 3

  const StageRow lookup = row_of(tracer, Stage::kIndexLookup, "docs");
  EXPECT_EQ(lookup.count, 7u);
  EXPECT_DOUBLE_EQ(lookup.wall_s, 3.0);
  EXPECT_DOUBLE_EQ(lookup.self_s, 3.0);
  EXPECT_DOUBLE_EQ(row_of(tracer, Stage::kSession).self_s, 7.0);
}

TEST(Tracer, RecordSimKeepsRegimesSeparate) {
  FakeClock clock;
  Tracer tracer(clock.fn());
  tracer.record_sim(Stage::kRetryWait, "transport", 1.5);
  tracer.record_sim(Stage::kRetryWait, "transport", 0.5);

  const StageRow row = row_of(tracer, Stage::kRetryWait, "transport");
  EXPECT_EQ(row.count, 0u);  // sim charges are not span completions
  EXPECT_DOUBLE_EQ(row.wall_s, 0.0);
  EXPECT_DOUBLE_EQ(row.sim_s, 2.0);
}

TEST(Tracer, SpanAddSimSecondsLandsOnItsRow) {
  FakeClock clock;
  Tracer tracer(clock.fn());
  {
    TraceSpan span(&tracer, Stage::kUpload, "container");
    span.add_sim_seconds(0.25);
    span.add_sim_seconds(0.75);
    clock.now = 2.0;
  }
  const StageRow row = row_of(tracer, Stage::kUpload, "container");
  EXPECT_DOUBLE_EQ(row.wall_s, 2.0);
  EXPECT_DOUBLE_EQ(row.sim_s, 1.0);
}

TEST(Tracer, FinishIsIdempotent) {
  FakeClock clock;
  Tracer tracer(clock.fn());
  TraceSpan span(&tracer, Stage::kUpload);
  clock.now = 1.0;
  span.finish();
  clock.now = 5.0;
  span.finish();  // no second row
  const StageRow row = row_of(tracer, Stage::kUpload);
  EXPECT_EQ(row.count, 1u);
  EXPECT_DOUBLE_EQ(row.wall_s, 1.0);
}

TEST(Tracer, NullTracerSpansAreInert) {
  TraceSpan span(nullptr, Stage::kChunk, "docs");
  span.add_sim_seconds(1.0);
  span.finish();  // must not crash
}

TEST(Tracer, EventSinkEmitsOneJsonlLinePerSpan) {
  FakeClock clock;
  Tracer tracer(clock.fn());
  std::vector<std::string> lines;
  tracer.set_event_sink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  {
    TraceSpan span(&tracer, Stage::kChunk, "docs");
    clock.now = 2.0;
  }
  tracer.set_event_sink(nullptr);
  {
    TraceSpan span(&tracer, Stage::kChunk, "docs");  // sink disabled
  }

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"stage\":\"chunk\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"category\":\"docs\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"wall_s\":2.0"), std::string::npos);
  EXPECT_EQ(lines[0].front(), '{');
  EXPECT_EQ(lines[0].back(), '}');
}

TEST(Tracer, CrossThreadSpansAggregateIntoOneSnapshot) {
#ifdef AAD_TSAN
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSpansPerThread = 200;
#else
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSpansPerThread = 2'000;
#endif
  Tracer tracer;  // wall clock: durations are nonnegative, counts exact
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&tracer, Stage::kFingerprint, "stress");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const StageRow row = row_of(tracer, Stage::kFingerprint, "stress");
  EXPECT_EQ(row.count, kThreads * kSpansPerThread);
  EXPECT_GE(row.wall_s, 0.0);
  EXPECT_GE(row.self_s, 0.0);
}

TEST(Tracer, SiblingTracersDoNotStealChildren) {
  // A span on tracer B nested inside a span on tracer A must not subtract
  // from A's self time (different tracer => unrelated instrumentation).
  FakeClock clock;
  Tracer a(clock.fn());
  Tracer b(clock.fn());
  {
    TraceSpan outer(&a, Stage::kSession);
    {
      TraceSpan inner(&b, Stage::kChunk);
      clock.now = 3.0;
    }
    clock.now = 4.0;
  }
  EXPECT_DOUBLE_EQ(row_of(a, Stage::kSession).self_s, 4.0);
  EXPECT_DOUBLE_EQ(row_of(b, Stage::kChunk).wall_s, 3.0);
}

}  // namespace
}  // namespace aadedupe::telemetry
