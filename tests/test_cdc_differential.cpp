// Differential property tests for the optimized CDC splitter: the min-skip
// + bulk-warm-up split() must emit byte-identical chunk boundaries to a
// naive reference that rolls the Rabin window over every byte from each
// cut (the pre-optimization algorithm), on random data, zero runs,
// repeated-window patterns, and sizes straddling every parameter edge.
#include <gtest/gtest.h>

#include "chunk/cdc_chunker.hpp"
#include "hash/rabin.hpp"
#include "util/rng.hpp"

namespace aadedupe::chunk {
namespace {

ByteBuffer random_bytes(std::size_t n, std::uint64_t seed) {
  ByteBuffer data(n);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

/// Naive splitter written against the spec, independent of CdcChunker's
/// internals: roll byte-at-a-time through the whole input, reset at cuts.
std::vector<ChunkRef> naive_split(ConstByteSpan data, const CdcParams& params,
                                  std::uint64_t poly_low) {
  std::vector<ChunkRef> out;
  if (data.empty()) return out;
  const hash::RabinPoly poly(poly_low);
  hash::RabinWindow window(poly, params.window_size);
  const std::uint64_t mask = params.expected_size - 1;
  const std::uint64_t size = data.size();
  std::uint64_t start = 0;
  std::uint64_t pos = 0;
  while (pos < size) {
    const std::uint64_t fp = window.push(data[pos]);
    ++pos;
    const std::uint64_t len = pos - start;
    const bool at_boundary = len >= params.min_size &&
                             (fp & mask) == (CdcChunker::kMagic & mask);
    if (at_boundary || len >= params.max_size || pos == size) {
      out.push_back(ChunkRef{start, static_cast<std::uint32_t>(len)});
      start = pos;
      window.reset();
    }
  }
  return out;
}

void expect_identical_boundaries(const CdcParams& params, ConstByteSpan data,
                                 const char* label) {
  const CdcChunker chunker(params);
  const auto optimized = chunker.split(data);
  const auto reference = chunker.split_reference(data);
  const auto naive = naive_split(data, params, hash::kRabinPolyA);
  EXPECT_EQ(optimized, naive) << label << " size=" << data.size();
  EXPECT_EQ(reference, naive) << label << " size=" << data.size();
  EXPECT_TRUE(is_exact_cover(optimized, data.size()))
      << label << " size=" << data.size();
}

class CdcDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CdcDifferential, RandomDataMatchesNaiveReference) {
  const std::size_t size = GetParam();
  expect_identical_boundaries(CdcParams{}, random_bytes(size, size + 101),
                              "random");
}

TEST_P(CdcDifferential, AllZeroRunsMatchNaiveReference) {
  const std::size_t size = GetParam();
  const ByteBuffer zeros(size, std::byte{0});
  expect_identical_boundaries(CdcParams{}, zeros, "zeros");
}

TEST_P(CdcDifferential, RepeatedWindowPatternMatchesNaiveReference) {
  // Content whose period equals the window width makes the rolling
  // fingerprint periodic — the adversarial case for cut-point logic.
  const std::size_t size = GetParam();
  const CdcParams params;
  const ByteBuffer pattern = random_bytes(params.window_size, 4242);
  ByteBuffer data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = pattern[i % pattern.size()];
  }
  expect_identical_boundaries(params, data, "repeated-window");
}

// Sizes straddling window_size (48), min_size (2048), max_size (16384),
// and combinations thereof.
INSTANTIATE_TEST_SUITE_P(
    EdgeSizes, CdcDifferential,
    ::testing::Values(0, 1, 47, 48, 49, 2047, 2048, 2049, 4096, 16383, 16384,
                      16385, 16384 + 2048, 65536, 100001, 1 << 20));

TEST(CdcDifferential, MixedZeroAndRandomRegions) {
  // Zero plateaus force max-size cuts; the transitions exercise warm-up
  // spans that straddle both regions.
  ByteBuffer data;
  for (int block = 0; block < 24; ++block) {
    if (block % 3 == 0) {
      data.resize(data.size() + 20000, std::byte{0});
    } else {
      append(data, random_bytes(7777, static_cast<std::uint64_t>(block)));
    }
  }
  expect_identical_boundaries(CdcParams{}, data, "mixed");
}

TEST(CdcDifferential, NonDefaultParameters) {
  CdcParams params;
  params.expected_size = 4096;
  params.min_size = 512;
  params.max_size = 8192;
  params.window_size = 16;
  ASSERT_TRUE(params.valid());
  for (const std::size_t size : {std::size_t{511}, std::size_t{512},
                                 std::size_t{513}, std::size_t{300000}}) {
    expect_identical_boundaries(params, random_bytes(size, size + 7),
                                "nondefault");
  }
}

TEST(CdcDifferential, MinSizeEqualsWindowSize) {
  // The warm-up span degenerates to window_size - 1 bytes starting at the
  // cut itself — the tightest legal min-skip.
  CdcParams params;
  params.expected_size = 64;
  params.min_size = 64;
  params.max_size = 256;
  params.window_size = 64;
  ASSERT_TRUE(params.valid());
  expect_identical_boundaries(params, random_bytes(10000, 33), "min==window");
}

TEST(CdcDifferential, SecondPolynomialAgreesToo) {
  const CdcChunker chunker(CdcParams{}, hash::kRabinPolyB);
  const ByteBuffer data = random_bytes(200000, 55);
  EXPECT_EQ(chunker.split(data), chunker.split_reference(data));
  EXPECT_EQ(chunker.split(data),
            naive_split(data, CdcParams{}, hash::kRabinPolyB));
}

// ---- Edge-case behaviour around the parameter bounds. ----

TEST(CdcChunkerEdges, InputSmallerThanWindowIsOneChunk) {
  const CdcChunker cdc;
  const ByteBuffer data = random_bytes(cdc.params().window_size - 1, 9);
  const auto chunks = cdc.split(data);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[0].length, data.size());
}

TEST(CdcChunkerEdges, InputExactlyMinSizeIsOneChunk) {
  // At len == min_size the input ends, so the cut lands at the end whether
  // or not the fingerprint matches: always exactly one chunk.
  const CdcChunker cdc;
  const ByteBuffer data = random_bytes(cdc.params().min_size, 10);
  const auto chunks = cdc.split(data);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].length, cdc.params().min_size);
}

TEST(CdcChunkerEdges, InputExactlyMaxSizeNeverExceedsMax) {
  const CdcChunker cdc;
  const ByteBuffer data = random_bytes(cdc.params().max_size, 11);
  const auto chunks = cdc.split(data);
  EXPECT_TRUE(is_exact_cover(chunks, data.size()));
  for (const ChunkRef& ref : chunks) {
    EXPECT_LE(ref.length, cdc.params().max_size);
  }
  // Either one max-size chunk or a boundary split it — both bounded below
  // by min_size except possibly the tail.
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].length, cdc.params().min_size);
  }
}

TEST(CdcChunkerEdges, BoundaryDenseContentCoversExactly) {
  // expected_size=2 makes nearly every eligible position a boundary: the
  // reserve hint's hard-bound cap and the min-size floor both engage.
  CdcParams params;
  params.expected_size = 2;
  params.min_size = 2;
  params.max_size = 16;
  params.window_size = 2;
  ASSERT_TRUE(params.valid());
  const CdcChunker cdc(params);
  const ByteBuffer data = random_bytes(5000, 12);
  const auto chunks = cdc.split(data);
  EXPECT_TRUE(is_exact_cover(chunks, data.size()));
  EXPECT_EQ(chunks, cdc.split_reference(data));
}

}  // namespace
}  // namespace aadedupe::chunk
