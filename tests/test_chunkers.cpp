// Chunking-engine tests: exact-cover invariants for all three engines,
// SC/WFC shape checks, CDC bounds/determinism, and the boundary-shifting
// property that motivates CDC (paper Section II, ref [14]).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chunk/cdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "hash/sha1.hpp"
#include "util/rng.hpp"

namespace aadedupe::chunk {
namespace {

ByteBuffer random_bytes(std::size_t n, std::uint64_t seed) {
  ByteBuffer data(n);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

// ---- Exact-cover property across engines and sizes. ----

struct CoverCase {
  const char* engine;
  std::size_t size;
};

class ExactCover : public ::testing::TestWithParam<CoverCase> {
 protected:
  std::unique_ptr<Chunker> make(const std::string& name) {
    if (name == "wfc") return std::make_unique<WholeFileChunker>();
    if (name == "sc") return std::make_unique<StaticChunker>();
    return std::make_unique<CdcChunker>();
  }
};

TEST_P(ExactCover, SplitCoversInputExactly) {
  const CoverCase& c = GetParam();
  const ByteBuffer data = random_bytes(c.size, c.size + 1);
  const auto chunker = make(c.engine);
  const auto chunks = chunker->split(data);
  EXPECT_TRUE(is_exact_cover(chunks, data.size()))
      << c.engine << " size=" << c.size;
  if (c.size == 0) {
    EXPECT_TRUE(chunks.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSizes, ExactCover,
    ::testing::Values(CoverCase{"wfc", 0}, CoverCase{"wfc", 1},
                      CoverCase{"wfc", 100000}, CoverCase{"sc", 0},
                      CoverCase{"sc", 1}, CoverCase{"sc", 8191},
                      CoverCase{"sc", 8192}, CoverCase{"sc", 8193},
                      CoverCase{"sc", 100000}, CoverCase{"cdc", 0},
                      CoverCase{"cdc", 1}, CoverCase{"cdc", 2048},
                      CoverCase{"cdc", 100000}, CoverCase{"cdc", 1000000}));

// ---- WFC ----

TEST(WholeFileChunker, SingleChunkSpansFile) {
  WholeFileChunker wfc;
  const ByteBuffer data = random_bytes(12345, 1);
  const auto chunks = wfc.split(data);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[0].length, 12345u);
  EXPECT_EQ(wfc.name(), "wfc");
}

// ---- SC ----

TEST(StaticChunker, FixedSizesWithShortTail) {
  StaticChunker sc(8192);
  const ByteBuffer data = random_bytes(8192 * 3 + 100, 2);
  const auto chunks = sc.split(data);
  ASSERT_EQ(chunks.size(), 4u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(chunks[static_cast<std::size_t>(i)].length, 8192u);
  EXPECT_EQ(chunks[3].length, 100u);
}

TEST(StaticChunker, CustomChunkSize) {
  StaticChunker sc(1000);
  const auto chunks = sc.split(random_bytes(2500, 3));
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[2].length, 500u);
}

TEST(StaticChunker, RejectsZeroChunkSize) {
  EXPECT_THROW(StaticChunker(0), PreconditionError);
}

TEST(StaticChunker, IdenticalContentAtAlignedOffsetsYieldsIdenticalChunks) {
  // The property the dataset generator and Observation 3 rely on: an 8 KB
  // block placed at any 8 KB-aligned offset produces the same chunk bytes.
  StaticChunker sc;
  const ByteBuffer block = random_bytes(8192, 4);
  ByteBuffer file_a, file_b;
  append(file_a, block);
  append(file_a, random_bytes(8192, 5));
  append(file_b, random_bytes(8192, 6));
  append(file_b, block);

  const auto ca = sc.split(file_a);
  const auto cb = sc.split(file_b);
  const auto da = hash::Sha1::hash(
      ConstByteSpan{file_a}.subspan(ca[0].offset, ca[0].length));
  const auto db = hash::Sha1::hash(
      ConstByteSpan{file_b}.subspan(cb[1].offset, cb[1].length));
  EXPECT_EQ(da, db);
}

// ---- CDC ----

TEST(CdcChunker, RespectsMinAndMaxBounds) {
  CdcChunker cdc;
  const ByteBuffer data = random_bytes(1 << 20, 7);
  const auto chunks = cdc.split(data);
  ASSERT_GT(chunks.size(), 1u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].length, cdc.params().min_size);
    EXPECT_LE(chunks[i].length, cdc.params().max_size);
  }
  // Final chunk may be shorter than min (end of stream) but never longer
  // than max.
  EXPECT_LE(chunks.back().length, cdc.params().max_size);
}

TEST(CdcChunker, ExpectedChunkSizeIsRoughly8K) {
  CdcChunker cdc;
  const ByteBuffer data = random_bytes(8 << 20, 8);
  const auto chunks = cdc.split(data);
  const double average =
      static_cast<double>(data.size()) / static_cast<double>(chunks.size());
  // Geometric cut process with min 2K / max 16K bounds: expect the
  // average within [5K, 12K].
  EXPECT_GT(average, 5000.0);
  EXPECT_LT(average, 12000.0);
}

TEST(CdcChunker, Deterministic) {
  CdcChunker cdc;
  const ByteBuffer data = random_bytes(300000, 9);
  EXPECT_EQ(cdc.split(data), cdc.split(data));
}

TEST(CdcChunker, ZeroRegionsForceMaxSizeCuts) {
  // Long zero runs never match the boundary pattern, so CDC emits
  // max-size chunks — the behaviour behind Observation 3's VMDK result.
  CdcChunker cdc;
  const ByteBuffer zeros(1 << 20, std::byte{0});
  const auto chunks = cdc.split(zeros);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].length, cdc.params().max_size);
  }
}

TEST(CdcChunker, RejectsInvalidParams) {
  CdcParams bad;
  bad.expected_size = 3000;  // not a power of two
  EXPECT_THROW(CdcChunker{bad}, PreconditionError);
  CdcParams bad2;
  bad2.min_size = 8;  // below window size
  EXPECT_THROW(CdcChunker{bad2}, PreconditionError);
  CdcParams bad3;
  bad3.max_size = 4096;  // below expected
  EXPECT_THROW(CdcChunker{bad3}, PreconditionError);
}

// The defining CDC property: inserting bytes near the front only disturbs
// chunks around the edit; the chunk stream resynchronizes, so most chunk
// digests are preserved. SC, by contrast, loses everything after the edit.
class BoundaryShift : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoundaryShift, CdcResynchronizesAfterInsertScDoesNot) {
  const std::size_t insert_len = GetParam();
  const ByteBuffer original = random_bytes(1 << 20, 10);

  ByteBuffer edited;
  edited.reserve(original.size() + insert_len);
  append(edited, ConstByteSpan{original.data(), 100});
  const ByteBuffer inserted = random_bytes(insert_len, 11);
  append(edited, inserted);
  append(edited, ConstByteSpan{original.data() + 100,
                               original.size() - 100});

  auto digest_set = [](const Chunker& chunker, const ByteBuffer& data) {
    std::set<std::string> out;
    for (const ChunkRef& ref : chunker.split(data)) {
      out.insert(hash::Sha1::hash(
                     ConstByteSpan{data}.subspan(ref.offset, ref.length))
                     .hex());
    }
    return out;
  };
  auto shared_fraction = [&](const Chunker& chunker) {
    const auto a = digest_set(chunker, original);
    const auto b = digest_set(chunker, edited);
    std::size_t shared = 0;
    for (const auto& d : b) shared += a.count(d);
    return static_cast<double>(shared) / static_cast<double>(b.size());
  };

  CdcChunker cdc;
  StaticChunker sc;
  const double cdc_shared = shared_fraction(cdc);
  const double sc_shared = shared_fraction(sc);

  EXPECT_GT(cdc_shared, 0.90) << "CDC must resync after an insert";
  EXPECT_LT(sc_shared, 0.05) << "SC must lose alignment after an insert";
}

INSTANTIATE_TEST_SUITE_P(InsertLengths, BoundaryShift,
                         ::testing::Values(1, 13, 100, 1001));

}  // namespace
}  // namespace aadedupe::chunk
