// unnamed-raii clean: every RAII object is bound to a named local whose
// lifetime spans the protected region.
#include <mutex>
#include <string_view>

namespace aadedupe::telemetry {

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) : name_(name) {}
  ~TraceSpan() {}

 private:
  std::string_view name_;
};

}  // namespace aadedupe::telemetry

namespace aadedupe {

int chunk_batch(std::mutex& mu) {
  telemetry::TraceSpan span("chunk_batch");
  std::lock_guard<std::mutex> guard(mu);
  return 42;
}

}  // namespace aadedupe
