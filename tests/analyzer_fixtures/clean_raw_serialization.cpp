// raw-serialization clean: records round-trip field-by-field through
// explicit little-endian byte helpers; memcpy only ever touches scalars.
#include <cstdint>
#include <cstring>

namespace aadedupe::index {

struct SegmentRecord {
  std::uint64_t fingerprint_hi;
  std::uint64_t fingerprint_lo;
  std::uint32_t segment_id;
  std::uint32_t offset;
};

inline void store_le64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

inline std::uint64_t load_le64(const unsigned char* in) {
  std::uint64_t v = 0;
  std::memcpy(&v, in, sizeof(v));  // scalar copy: fine
  return v;
}

void encode(const SegmentRecord& record, unsigned char* out) {
  store_le64(out, record.fingerprint_hi);
  store_le64(out + 8, record.fingerprint_lo);
  store_le64(out + 16,
             (std::uint64_t{record.segment_id} << 32) | record.offset);
}

SegmentRecord decode(const unsigned char* bytes) {
  SegmentRecord record{};
  record.fingerprint_hi = load_le64(bytes);
  record.fingerprint_lo = load_le64(bytes + 8);
  const std::uint64_t packed = load_le64(bytes + 16);
  record.segment_id = static_cast<std::uint32_t>(packed >> 32);
  record.offset = static_cast<std::uint32_t>(packed);
  return record;
}

}  // namespace aadedupe::index
