// wall-clock clean: durations come from an injected stopwatch-style
// abstraction; nothing touches a clock here.
#include <cstdint>

namespace aadedupe::core {

class StopWatch {
 public:
  std::uint64_t elapsed_nanos() const { return nanos_; }
  void add(std::uint64_t n) { nanos_ += n; }

 private:
  std::uint64_t nanos_ = 0;
};

std::uint64_t stall_nanos(const StopWatch& watch) {
  return watch.elapsed_nanos();
}

}  // namespace aadedupe::core
