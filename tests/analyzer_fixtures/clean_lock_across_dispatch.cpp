// lock-across-dispatch clean: the guard scope closes before dispatch,
// and work queued inside a lambda runs later, off the lock.
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace aadedupe {

class ThreadPool {
 public:
  template <typename F>
  void submit(F&& fn) {
    fn();
  }
  template <typename F>
  void parallel_for(std::size_t count, F&& fn) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
};

namespace cloud {
class CloudBackend {
 public:
  virtual ~CloudBackend() = default;
  virtual bool put(const std::string& key) = 0;
};
}  // namespace cloud

struct Shard {
  std::mutex mu;
  ThreadPool pool;
  cloud::CloudBackend* backend = nullptr;
  std::vector<std::string> pending;

  void rebalance() {
    std::vector<std::string> batch;
    {
      std::lock_guard<std::mutex> guard(mu);
      batch.swap(pending);  // copy state out under the lock...
    }
    // ...then dispatch with the guard destroyed.
    pool.parallel_for(batch.size(), [&](std::size_t i) {
      backend->put(batch[i]);  // inside the lambda body: runs unlocked
    });
  }
};

}  // namespace aadedupe
