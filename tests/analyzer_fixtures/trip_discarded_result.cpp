// discarded-result trip: a CloudResult-returning call used as a bare
// expression statement drops the error on the floor.
namespace aadedupe::cloud {

enum class CloudError { kTransient, kNotFound };

template <typename T>
class CloudResult {
 public:
  CloudResult(T value) : value_(value), ok_(true) {}
  CloudResult(CloudError error) : error_(error) {}
  ~CloudResult() {}
  bool ok() const { return ok_; }

 private:
  T value_{};
  CloudError error_ = CloudError::kTransient;
  bool ok_ = false;
};

struct CloudOk {};
using CloudStatus = CloudResult<CloudOk>;

CloudStatus upload_segment() { return CloudOk{}; }
CloudError classify() { return CloudError::kTransient; }

}  // namespace aadedupe::cloud

void flush_pending() {
  aadedupe::cloud::upload_segment();  // finding: status discarded
  aadedupe::cloud::classify();        // finding: CloudError discarded
}
