// lock-across-dispatch trip: a lock_guard is still alive when the code
// blocks on ThreadPool::parallel_for and on a cloud-backend put().
#include <cstddef>
#include <mutex>
#include <string>

namespace aadedupe {

class ThreadPool {
 public:
  template <typename F>
  void submit(F&& fn) {
    fn();
  }
  template <typename F>
  void parallel_for(std::size_t count, F&& fn) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
};

namespace cloud {
class CloudBackend {
 public:
  virtual ~CloudBackend() = default;
  virtual bool put(const std::string& key) = 0;
};
}  // namespace cloud

struct Shard {
  std::mutex mu;
  ThreadPool pool;
  cloud::CloudBackend* backend = nullptr;

  void rebalance() {
    std::lock_guard<std::mutex> guard(mu);
    pool.parallel_for(8, [](std::size_t) {});  // finding
    backend->put("manifest");                  // finding
  }
};

}  // namespace aadedupe
