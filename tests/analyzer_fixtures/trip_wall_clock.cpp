// wall-clock trip: pipeline code reads the clock directly instead of
// going through util/stopwatch (this file is outside the allowlist).
#include <chrono>
#include <ctime>

namespace aadedupe::core {

long stall_nanos() {
  auto begin = std::chrono::steady_clock::now();  // finding
  auto end = std::chrono::steady_clock::now();    // finding
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
      .count();
}

long stamp() {
  return static_cast<long>(std::time(nullptr));  // finding
}

}  // namespace aadedupe::core
