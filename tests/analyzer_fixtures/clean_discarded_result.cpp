// discarded-result clean: every CloudResult is inspected or bound.
namespace aadedupe::cloud {

enum class CloudError { kTransient, kNotFound };

template <typename T>
class CloudResult {
 public:
  CloudResult(T value) : value_(value), ok_(true) {}
  CloudResult(CloudError error) : error_(error) {}
  ~CloudResult() {}
  bool ok() const { return ok_; }

 private:
  T value_{};
  CloudError error_ = CloudError::kTransient;
  bool ok_ = false;
};

struct CloudOk {};
using CloudStatus = CloudResult<CloudOk>;

CloudStatus upload_segment() { return CloudOk{}; }
void log_failure() {}

}  // namespace aadedupe::cloud

bool flush_pending() {
  auto status = aadedupe::cloud::upload_segment();
  if (!status.ok()) {
    aadedupe::cloud::log_failure();  // void-returning call: fine
    return false;
  }
  return aadedupe::cloud::upload_segment().ok();  // inspected inline: fine
}
