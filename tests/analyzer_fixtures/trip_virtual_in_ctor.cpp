// virtual-in-ctor trip: the constructor and destructor of a CloudBackend
// subclass call a virtual on *this — dispatch lands on this class, not
// the override a further subclass installs.
#include <string>

namespace aadedupe::cloud {

class CloudBackend {
 public:
  virtual ~CloudBackend() = default;
  virtual bool put(const std::string& key) = 0;
  virtual void warm_cache() {}
  virtual void drain() {}
};

class CachingBackend : public CloudBackend {
 public:
  CachingBackend() {
    warm_cache();  // finding: virtual call during construction
  }
  ~CachingBackend() override {
    drain();  // finding: virtual call during destruction
  }
  bool put(const std::string&) override { return true; }
};

}  // namespace aadedupe::cloud
