#pragma once

#include "fingerprint.hpp"

namespace aadedupe {

struct ChunkMeta {
  Fingerprint digest;
  unsigned size = 0;
};

}  // namespace aadedupe
