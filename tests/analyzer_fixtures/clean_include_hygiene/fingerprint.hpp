#pragma once

namespace aadedupe {

struct Fingerprint {
  unsigned long long hi = 0;
  unsigned long long lo = 0;
};

}  // namespace aadedupe
