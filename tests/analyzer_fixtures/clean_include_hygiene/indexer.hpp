#pragma once

#include "chunk.hpp"
#include "fingerprint.hpp"

namespace aadedupe {

// Every used type's defining header is included directly.
inline bool same_digest(const ChunkMeta& a, const Fingerprint& b) {
  return a.digest.hi == b.hi && a.digest.lo == b.lo;
}

}  // namespace aadedupe
