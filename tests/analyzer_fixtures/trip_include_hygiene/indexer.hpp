#pragma once

#include "chunk.hpp"

namespace aadedupe {

// Uses Fingerprint but only includes chunk.hpp, which happens to drag
// fingerprint.hpp in transitively — the finding.
inline bool same_digest(const ChunkMeta& a, const Fingerprint& b) {
  return a.digest.hi == b.hi && a.digest.lo == b.lo;
}

}  // namespace aadedupe
