// unnamed-raii trip: the TraceSpan and lock_guard temporaries die at the
// semicolon, so neither covers the work below them.
#include <mutex>
#include <string_view>

namespace aadedupe::telemetry {

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) : name_(name) {}
  ~TraceSpan() {}

 private:
  std::string_view name_;
};

}  // namespace aadedupe::telemetry

namespace aadedupe {

int chunk_batch(std::mutex& mu) {
  telemetry::TraceSpan("chunk_batch");  // finding: span already ended
  std::lock_guard<std::mutex>{mu};      // finding: lock already released
  return 42;
}

}  // namespace aadedupe
