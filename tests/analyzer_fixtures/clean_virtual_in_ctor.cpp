// virtual-in-ctor clean: construction uses non-virtual helpers; virtual
// dispatch happens only on fully-constructed objects.
#include <string>

namespace aadedupe::cloud {

class CloudBackend {
 public:
  virtual ~CloudBackend() = default;
  virtual bool put(const std::string& key) = 0;
  virtual void warm_cache() {}
};

class CachingBackend : public CloudBackend {
 public:
  CachingBackend() {
    reserve_slots();  // non-virtual helper: fine
  }
  bool put(const std::string& key) override {
    warm_cache();  // virtual call outside ctor/dtor: fine
    return !key.empty();
  }

 private:
  void reserve_slots() {}
};

void roundtrip(CloudBackend& backend) {
  backend.warm_cache();  // free-function caller: fine
}

}  // namespace aadedupe::cloud
