// exception-discipline clean: taxonomy caught by const reference; the
// bare catch leaves flight-recorder evidence before handling, and a
// rethrowing catch-all is fine too.
#include <stdexcept>

namespace aadedupe {

class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
inline void notify_failure(const char*, const char*) noexcept {}
}  // namespace detail

void parse();

bool load_manifest() {
  try {
    parse();
  } catch (const FormatError& err) {  // by const reference: fine
    return false;
  }
  return true;
}

bool load_state() {
  try {
    parse();
  } catch (...) {
    detail::notify_failure("state_load", "unknown exception");  // evidence
    return false;
  }
  return true;
}

void replay() {
  try {
    parse();
  } catch (...) {
    throw;  // rethrow: fine
  }
}

}  // namespace aadedupe
