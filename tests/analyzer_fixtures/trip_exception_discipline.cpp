// exception-discipline trip: the taxonomy is caught by value (slicing
// the dynamic type) and a bare catch (...) eats the exception with no
// flight-recorder evidence.
#include <stdexcept>

namespace aadedupe {

class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void parse();

bool load_manifest() {
  try {
    parse();
  } catch (FormatError err) {  // finding: caught by value
    return false;
  }
  return true;
}

bool load_state() {
  try {
    parse();
  } catch (...) {  // finding: swallowed without trigger()/rethrow
    return false;
  }
  return true;
}

}  // namespace aadedupe
