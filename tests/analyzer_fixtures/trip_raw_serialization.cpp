// raw-serialization trip: a record struct is overlaid onto raw bytes via
// memcpy and reinterpret_cast, baking padding and host endianness into
// the on-disk format.
#include <cstdint>
#include <cstring>

namespace aadedupe::index {

struct SegmentRecord {
  std::uint64_t fingerprint_hi;
  std::uint64_t fingerprint_lo;
  std::uint32_t segment_id;
  std::uint32_t offset;
};

void encode(const SegmentRecord& record, unsigned char* out) {
  std::memcpy(out, &record, sizeof(record));  // finding
}

const SegmentRecord* decode(const unsigned char* bytes) {
  return reinterpret_cast<const SegmentRecord*>(bytes);  // finding
}

}  // namespace aadedupe::index
