// Integration tests across all five backup schemes: every scheme must
// restore every file byte-exactly, dedup schemes must exploit
// cross-session redundancy, and the session reports must be coherent.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backup/chunk_level.hpp"
#include "backup/file_level.hpp"
#include "backup/full_backup.hpp"
#include "backup/incremental.hpp"
#include "backup/sam.hpp"
#include "backup/target_dedupe.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe {
namespace {

dataset::DatasetConfig test_config(std::uint64_t bytes = 6ull << 20) {
  dataset::DatasetConfig config;
  config.seed = 11;
  config.session_bytes = bytes;
  config.max_file_bytes = 1 << 20;
  return config;
}

std::unique_ptr<backup::BackupScheme> make_scheme(const std::string& name,
                                                  cloud::CloudTarget& target) {
  if (name == "full") return std::make_unique<backup::FullBackupScheme>(target);
  if (name == "incremental")
    return std::make_unique<backup::IncrementalScheme>(target);
  if (name == "file") return std::make_unique<backup::FileLevelScheme>(target);
  if (name == "chunk")
    return std::make_unique<backup::ChunkLevelScheme>(target);
  if (name == "sam") return std::make_unique<backup::SamScheme>(target);
  if (name == "target")
    return std::make_unique<backup::TargetDedupeScheme>(target);
  core::AaDedupeOptions options;
  options.worker_threads = 4;
  return std::make_unique<core::AaDedupeScheme>(target, options);
}

class AllSchemes : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchemes, RestoreEqualsSourceAfterOneSession) {
  cloud::CloudTarget target;
  auto scheme = make_scheme(GetParam(), target);
  dataset::DatasetGenerator gen(test_config());
  const dataset::Snapshot snapshot = gen.initial();

  const auto report = scheme->backup(snapshot);
  EXPECT_EQ(report.dataset_bytes, snapshot.total_bytes());
  EXPECT_EQ(report.dataset_files, snapshot.files.size());

  // Verify every 7th file plus the first and last (bounded runtime).
  for (std::size_t i = 0; i < snapshot.files.size();
       i += (i + 7 < snapshot.files.size() ? std::size_t{7} : std::size_t{1})) {
    const dataset::FileEntry& file = snapshot.files[i];
    const ByteBuffer expected = dataset::materialize(file.content);
    const ByteBuffer restored = scheme->restore_file(file.path);
    ASSERT_EQ(restored.size(), expected.size()) << file.path;
    ASSERT_EQ(restored, expected) << file.path;
  }
}

TEST_P(AllSchemes, RestoreEqualsSourceAfterThreeSessions) {
  cloud::CloudTarget target;
  auto scheme = make_scheme(GetParam(), target);
  dataset::DatasetGenerator gen(test_config(3ull << 20));
  const auto sessions = gen.sessions(3);
  for (const auto& snapshot : sessions) scheme->backup(snapshot);

  const dataset::Snapshot& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 11 < last.files.size() ? std::size_t{11} : std::size_t{1})) {
    const dataset::FileEntry& file = last.files[i];
    const ByteBuffer expected = dataset::materialize(file.content);
    const ByteBuffer restored = scheme->restore_file(file.path);
    ASSERT_EQ(restored, expected) << file.path << " v" << file.version;
  }
}

TEST_P(AllSchemes, RestoreUnknownPathThrows) {
  cloud::CloudTarget target;
  auto scheme = make_scheme(GetParam(), target);
  dataset::DatasetGenerator gen(test_config(2ull << 20));
  scheme->backup(gen.initial());
  EXPECT_THROW(scheme->restore_file("no/such/file.bin"), FormatError);
}

TEST_P(AllSchemes, ReportsAreCoherent) {
  cloud::CloudTarget target;
  auto scheme = make_scheme(GetParam(), target);
  dataset::DatasetGenerator gen(test_config(2ull << 20));
  const auto report = scheme->backup(gen.initial());

  EXPECT_GT(report.transferred_bytes, 0u);
  EXPECT_GT(report.upload_requests, 0u);
  EXPECT_GT(report.dedupe_seconds, 0.0);
  EXPECT_GE(report.transfer_seconds, 0.0);
  EXPECT_GE(report.dedupe_ratio(), 1.0);
  EXPECT_GT(report.dedupe_throughput(), 0.0);
  EXPECT_GE(report.bytes_saved_per_second(), 0.0);
  EXPECT_GE(report.backup_window_seconds(), report.transfer_seconds);
  EXPECT_EQ(report.cumulative_stored_bytes, target.store().stored_bytes());
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemes,
                         ::testing::Values("full", "incremental", "file",
                                           "chunk", "sam", "target", "aa"));

// ---- Cross-scheme behavioural ordering ----

struct TwoSessionRun {
  backup::SessionReport first;
  backup::SessionReport second;
};

TwoSessionRun run_two_sessions(const std::string& scheme_name) {
  cloud::CloudTarget target;
  auto scheme = make_scheme(scheme_name, target);
  dataset::DatasetGenerator gen(test_config());
  const auto sessions = gen.sessions(2);
  TwoSessionRun out;
  out.first = scheme->backup(sessions[0]);
  out.second = scheme->backup(sessions[1]);
  return out;
}

TEST(SchemeBehaviour, FullBackupNeverDedupes) {
  const auto run = run_two_sessions("full");
  EXPECT_GE(run.first.transferred_bytes, run.first.dataset_bytes);
  EXPECT_GE(run.second.transferred_bytes, run.second.dataset_bytes);
}

TEST(SchemeBehaviour, DedupSchemesShipFarLessOnSecondSession) {
  for (const std::string name : {"incremental", "file", "chunk", "sam", "aa"}) {
    const auto run = run_two_sessions(name);
    EXPECT_LT(run.second.transferred_bytes, run.second.dataset_bytes / 2)
        << name << " should exploit cross-session redundancy";
  }
}

TEST(SchemeBehaviour, ChunkLevelStoresLessThanFileLevelOverall) {
  // Sub-file dedup must beat whole-file dedup on cumulative storage
  // (Fig. 7 ordering).
  const auto file_run = run_two_sessions("file");
  const auto chunk_run = run_two_sessions("chunk");
  EXPECT_LT(chunk_run.second.cumulative_stored_bytes,
            file_run.second.cumulative_stored_bytes);
}

TEST(SchemeBehaviour, AaRequestsFarBelowChunkLevel) {
  // Container aggregation: AA-Dedupe ships ~1 MB objects while the
  // chunk-level baseline ships one object per new chunk (Fig. 10 driver).
  const auto aa = run_two_sessions("aa");
  const auto avamar = run_two_sessions("chunk");
  EXPECT_LT(aa.first.upload_requests * 10, avamar.first.upload_requests);
}

TEST(SchemeBehaviour, AaStorageCompetitiveWithChunkLevel) {
  const auto aa = run_two_sessions("aa");
  const auto avamar = run_two_sessions("chunk");
  // Application-aware chunking sacrifices almost no effectiveness
  // (paper: "similar or better space efficiency than Avamar and SAM").
  // Container padding costs a little; stay within 40%.
  EXPECT_LT(static_cast<double>(aa.second.cumulative_stored_bytes),
            static_cast<double>(avamar.second.cumulative_stored_bytes) * 1.4);
}

TEST(SchemeBehaviour, IncrementalShipsOnlyChangedFiles) {
  const auto run = run_two_sessions("incremental");
  // Second-session traffic must be well under first-session traffic.
  EXPECT_LT(run.second.transferred_bytes, run.first.transferred_bytes / 2);
}

}  // namespace
}  // namespace aadedupe
