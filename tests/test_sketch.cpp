// QuantileSketch tests: the 1% relative-error guarantee against exact
// order statistics, exact bucket-wise merge (associative + commutative),
// thread-sharded registry sketches merging to the single-thread answer,
// and a TSan-visible stress race against Timeline snapshots.
#include "telemetry/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aadedupe::telemetry {
namespace {

/// Deterministic heavy-tailed values (roughly lognormal), the shape of
/// every instrumented series: many small latencies, a long tail.
std::vector<double> tail_heavy_values(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    const double v = rng.uniform();
    // exp of a symmetric sum stretches uniform noise into a fat tail.
    values.push_back(1e-4 * std::exp(3.0 * (u + v - 1.0)));
  }
  return values;
}

/// Exact order statistic with the sketch's own rank rule
/// (rank = max(1, ceil(q * count))), so the comparison isolates bucket
/// error from rank-definition differences.
double exact_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * n)));
  return sorted[rank - 1];
}

TEST(QuantileSketch, EmptyAndSingleValueEdges) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);

  sketch.observe(42.0);
  EXPECT_EQ(sketch.count(), 1u);
  // min/max are exact, and every quantile of one value is that value.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 42.0);
}

TEST(QuantileSketch, ZeroBucketAbsorbsZerosNegativesAndDenormals) {
  QuantileSketch sketch;
  sketch.observe(0.0);
  sketch.observe(-3.5);                               // clamped to zero
  sketch.observe(QuantileSketch::kMinIndexable / 2);  // below the grid
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_EQ(sketch.zero_count(), 3u);
  EXPECT_TRUE(sketch.buckets().empty());
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  // max is tracked exactly, even for sub-grid values.
  EXPECT_DOUBLE_EQ(sketch.max(), QuantileSketch::kMinIndexable / 2);

  // Zeros sort before every indexable value.
  sketch.observe(10.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 10.0);
}

TEST(QuantileSketch, QuantilesWithinOnePercentOfExact) {
  const std::vector<double> values = tail_heavy_values(7, 5000);
  QuantileSketch sketch;  // default accuracy: 1%
  for (const double v : values) sketch.observe(v);

  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile(values, q);
    const double estimate = sketch.quantile(q);
    // Guarantee is relative error <= alpha; allow float slack on top.
    EXPECT_NEAR(estimate, exact, 0.0101 * exact)
        << "q=" << q << " exact=" << exact << " est=" << estimate;
  }
}

TEST(QuantileSketch, QuantileIsMonotoneInQ) {
  const std::vector<double> values = tail_heavy_values(11, 2000);
  QuantileSketch sketch;
  for (const double v : values) sketch.observe(v);
  double previous = sketch.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double current = sketch.quantile(q);
    EXPECT_GE(current, previous) << "q=" << q;
    previous = current;
  }
}

TEST(QuantileSketch, MergeIsCommutativeAndAssociativeExactly) {
  const std::vector<double> values = tail_heavy_values(23, 3000);
  QuantileSketch a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).observe(values[i]);
  }
  a.observe(0.0);  // exercise zero-bucket merging too

  // (a + b) + c
  QuantileSketch left(a.relative_accuracy());
  left.merge(a);
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  QuantileSketch bc(b.relative_accuracy());
  bc.merge(b);
  bc.merge(c);
  QuantileSketch right(a.relative_accuracy());
  right.merge(a);
  right.merge(bc);
  // c + b + a
  QuantileSketch reversed(c.relative_accuracy());
  reversed.merge(c);
  reversed.merge(b);
  reversed.merge(a);
  // The whole stream, one sketch.
  QuantileSketch whole;
  whole.observe(0.0);
  for (const double v : values) whole.observe(v);

  // Bucket-wise integer addition: all orders are byte-identical, and all
  // equal the sketch that saw the unsplit stream.
  EXPECT_TRUE(left.same_distribution(right));
  EXPECT_TRUE(left.same_distribution(reversed));
  EXPECT_TRUE(left.same_distribution(whole));
  EXPECT_EQ(left.buckets(), whole.buckets());
  EXPECT_EQ(left.zero_count(), whole.zero_count());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), whole.quantile(q));
  }
}

TEST(QuantileSketch, MergeRejectsMismatchedAccuracy) {
  QuantileSketch fine(0.01);
  QuantileSketch coarse(0.05);
  coarse.observe(1.0);
  EXPECT_THROW(fine.merge(coarse), PreconditionError);
}

TEST(QuantileSketch, FillJsonCarriesTheExactEncoding) {
  QuantileSketch sketch;
  sketch.observe(0.0);
  sketch.observe(1.5);
  sketch.observe(1500.0);

  JsonValue doc;
  sketch.fill_json(doc);
  EXPECT_DOUBLE_EQ(doc.find("alpha")->as_double(), 0.01);
  EXPECT_EQ(doc.find("count")->as_uint(), 3u);
  EXPECT_EQ(doc.find("zeros")->as_uint(), 1u);
  EXPECT_DOUBLE_EQ(doc.find("min")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(doc.find("max")->as_double(), 1500.0);
  // idx[] / cnt[] are the mergeable part: one row per occupied bucket.
  EXPECT_EQ(doc.find("idx")->size(), sketch.buckets().size());
  EXPECT_EQ(doc.find("cnt")->size(), sketch.buckets().size());
}

#ifdef AAD_TSAN
constexpr std::size_t kStressThreads = 4;
constexpr std::size_t kObservationsPerThread = 2'000;
#else
constexpr std::size_t kStressThreads = 8;
constexpr std::size_t kObservationsPerThread = 20'000;
#endif

TEST(QuantileSketch, ThreadShardedRegistryMatchesSingleThread) {
  MetricsRegistry registry;
  const Sketch handle = registry.sketch("chunk.latency_s");

  // Pre-split the deterministic stream so the sharded run and the serial
  // run see exactly the same multiset of values.
  std::vector<std::vector<double>> slices(kStressThreads);
  for (std::size_t t = 0; t < kStressThreads; ++t) {
    slices[t] = tail_heavy_values(100 + t, kObservationsPerThread);
  }

  std::vector<std::thread> threads;
  threads.reserve(kStressThreads);
  for (std::size_t t = 0; t < kStressThreads; ++t) {
    threads.emplace_back([&handle, &slices, t] {
      for (const double v : slices[t]) handle.observe(v);
    });
  }
  for (std::thread& thread : threads) thread.join();

  QuantileSketch serial;
  for (const auto& slice : slices) {
    for (const double v : slice) serial.observe(v);
  }

  const MetricsSnapshot snapshot = registry.snapshot();
  const MetricsSnapshot::Entry* entry = snapshot.find("chunk.latency_s");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricKind::kSketch);
  // Shard-merge == serial, bucket for bucket: the same exactness the
  // fleet aggregation relies on, applied inside one process.
  EXPECT_TRUE(entry->sketch.same_distribution(serial));
  EXPECT_EQ(entry->sketch.buckets(), serial.buckets());
  EXPECT_DOUBLE_EQ(entry->sketch.min(), serial.min());
  EXPECT_DOUBLE_EQ(entry->sketch.max(), serial.max());
}

TEST(QuantileSketch, ObserversRaceTimelineSnapshotsCleanly) {
  // TSan-checked: writer threads observe into labeled sketches while the
  // main thread forces Timeline samples (each one a full registry
  // snapshot, sketch shards included). The mid-flight snapshots only
  // need to be well-formed; the final one must be exact.
  MetricsRegistry registry;
  Timeline timeline(&registry);
  timeline.set_interval(1.0);

  std::vector<Sketch> handles;
  handles.reserve(kStressThreads);
  for (std::size_t t = 0; t < kStressThreads; ++t) {
    std::string tenant = "t";  // (two-step append dodges a GCC 12
    tenant += std::to_string(t);  // -Werror=restrict false positive)
    handles.push_back(
        registry.sketch("session.dedupe_ratio", {{"tenant", tenant}}));
  }

  std::vector<std::thread> threads;
  threads.reserve(kStressThreads);
  for (std::size_t t = 0; t < kStressThreads; ++t) {
    threads.emplace_back([&handles, t] {
      Xoshiro256 rng(t + 1);
      for (std::size_t i = 0; i < kObservationsPerThread; ++i) {
        handles[t].observe(1.0 + rng.uniform());
      }
    });
  }
  for (double at = 0.0; at < 32.0; at += 1.0) {
    timeline.force_sample(at);
    const MetricsSnapshot racing = registry.snapshot();
    for (const MetricsSnapshot::Entry& entry : racing.entries) {
      std::uint64_t bucketed = entry.sketch.zero_count();
      for (const auto& [index, count] : entry.sketch.buckets()) {
        bucketed += count;
      }
      EXPECT_EQ(bucketed, entry.sketch.count());
    }
  }
  for (std::thread& thread : threads) thread.join();

  const MetricsSnapshot snapshot = registry.snapshot();
  std::uint64_t total = 0;
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    total += entry.sketch.count();
  }
  EXPECT_EQ(total, kStressThreads * kObservationsPerThread);
}

}  // namespace
}  // namespace aadedupe::telemetry
