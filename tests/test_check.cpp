// Tests for the check.hpp Expects/Ensures taxonomy: exception types, the
// file:line payload, and cross-thread propagation — an InvariantError raised
// on a pool worker must surface on the thread that commits the session.
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

namespace aadedupe {
namespace {

int checked_divide(int num, int den) {
  AAD_EXPECTS(den != 0);
  const int q = num / den;
  AAD_ENSURES(q * den + num % den == num);
  return q;
}

TEST(Check, ExpectsPassesSilently) { EXPECT_EQ(checked_divide(42, 6), 7); }

TEST(Check, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(checked_divide(1, 0), PreconditionError);
}

TEST(Check, PreconditionIsLogicErrorNotRuntimeError) {
  // Catch-by-category must work: Precondition/Invariant are logic_error
  // (bugs), FormatError is runtime_error (bad external data).
  EXPECT_THROW(checked_divide(1, 0), std::logic_error);
  try {
    checked_divide(1, 0);
    FAIL();
  } catch (const std::runtime_error&) {
    FAIL() << "PreconditionError must not be a runtime_error";
  } catch (const std::logic_error&) {
  }
}

TEST(Check, FormatErrorIsRuntimeError) {
  EXPECT_THROW(throw FormatError("bad magic"), std::runtime_error);
}

TEST(Check, ExpectsMessageCarriesExpressionAndLocation) {
  try {
    AAD_EXPECTS(1 + 1 == 3);
    FAIL();
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition failed"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    // A plausible line number follows the file name (file:line).
    const auto colon = what.rfind(':');
    ASSERT_NE(colon, std::string::npos);
    EXPECT_GT(std::stoi(what.substr(colon + 1)), 0);
  }
}

TEST(Check, EnsuresMessageCarriesExpressionAndLocation) {
  try {
    AAD_ENSURES(2 * 2 == 5);
    FAIL();
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant failed"), std::string::npos) << what;
    EXPECT_NE(what.find("2 * 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  }
}

TEST(Check, ExpectsEvaluatesConditionExactlyOnce) {
  int evaluations = 0;
  AAD_EXPECTS(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

// ---- Cross-thread propagation (death-of-a-worker style) --------------------

TEST(Check, WorkerInvariantErrorSurfacesOnCommittingThread) {
  // The two-phase front end runs Phase 1 on pool workers and commits on the
  // calling thread; an InvariantError raised inside a worker must arrive on
  // the committing thread intact — right type, right message — not get
  // swallowed or demoted to a generic exception.
  ThreadPool pool(4);
  bool caught = false;
  try {
    pool.parallel_for(
        64,
        [](std::size_t i) {
          AAD_ENSURES(i != 17);  // fires on exactly one worker
        },
        /*grain=*/1);
  } catch (const InvariantError& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("i != 17"), std::string::npos);
  }
  EXPECT_TRUE(caught) << "InvariantError lost between worker and committer";
}

TEST(Check, WorkerPreconditionErrorSurfacesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { AAD_EXPECTS(false); });
  EXPECT_THROW(future.get(), PreconditionError);
}

}  // namespace
}  // namespace aadedupe
