// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (GCC builds). Replays every file passed on the command line — or every
// regular file under a directory argument — through the harness entry
// point, so the checked-in seed corpora double as regression tests.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

int replay_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return -1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s <corpus file or dir>...\n", argv[0]);
    return 1;
  }
  std::sort(inputs.begin(), inputs.end());
  for (const auto& path : inputs) {
    if (replay_file(path) < 0) return 1;
  }
  std::printf("replayed %zu corpus input(s)\n", inputs.size());
  return 0;
}
