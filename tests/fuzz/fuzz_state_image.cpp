// Fuzz target: AaDedupeScheme::import_state — the AADSTAT2 client-state
// image a resumed client trusts to rebuild its indexes, recipes, and
// upload journal. Arbitrary bytes must either import or throw
// FormatError; a half-applied import that corrupts the scheme would show
// up here as a crash on the follow-up probe.
#include <cstddef>
#include <cstdint>

#include "cloud/cloud_target.hpp"
#include "core/aa_dedupe.hpp"
#include "util/bytes.hpp"
#include "util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace aadedupe;
  const ConstByteSpan image(reinterpret_cast<const std::byte*>(data), size);
  cloud::CloudTarget target;
  core::AaDedupeScheme scheme(target);
  try {
    scheme.import_state(image);
  } catch (const FormatError&) {
    // Malformed input: the documented outcome.
  }
  // The scheme must still be usable (or cleanly empty) after a rejected
  // image — exporting exercises the surviving state end to end.
  (void)scheme.export_state();
  return 0;
}
