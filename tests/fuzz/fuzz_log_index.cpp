// Fuzz target: LogStructuredIndex crash recovery — the MANIFEST reader,
// the WAL replayer (torn-tail truncation, per-record checksums), and the
// seg-<id>.idx 40-byte record parser.
//
// The first input byte routes the payload to one of the on-disk files;
// for the segment mode a syntactically valid MANIFEST referencing the
// fuzzed segment is synthesized so open() actually reads it. Arbitrary
// bytes must either recover (possibly truncating a torn WAL) or throw
// FormatError.
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "index/log_structured_index.hpp"
#include "util/bytes.hpp"
#include "util/check.hpp"

namespace {

namespace fs = std::filesystem;
using namespace aadedupe;

void write_file(const fs::path& path, ConstByteSpan bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Local copy of the MANIFEST checksum (the production one is file-local
// to log_structured_index.cpp — an independent implementation here also
// cross-checks it).
std::uint32_t fnv1a32(ConstByteSpan bytes) noexcept {
  std::uint32_t hash = 0x811C9DC5u;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint32_t>(b);
    hash *= 0x01000193u;
  }
  return hash;
}

// MANIFEST: magic | live_count u64 | next_segment_id u64 |
// segment_count u32 | { id u64 | record_count u64 }* | fnv1a-32.
ByteBuffer manifest_for_segment(std::uint64_t record_count) {
  ByteBuffer out;
  append(out, as_bytes(std::string_view("AADLSMF1")));
  append_le64(out, record_count);  // live_count (claim; reader re-derives)
  append_le64(out, 1);             // next_segment_id
  append_le32(out, 1);             // segment_count
  append_le64(out, 0);             // segment id 0
  append_le64(out, record_count);
  append_le32(out, fnv1a32(out));
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const unsigned mode = data[0] % 3;
  const ConstByteSpan payload(reinterpret_cast<const std::byte*>(data + 1),
                              size - 1);

  static std::uint64_t counter = 0;
  const fs::path dir =
      fs::temp_directory_path() /
      ("aad_fuzz_lsi_" + std::to_string(++counter));
  fs::create_directories(dir);

  if (mode == 0) {
    write_file(dir / "MANIFEST", payload);
  } else if (mode == 1) {
    write_file(dir / "wal.log", payload);
  } else {
    // Claim one record per 40 payload bytes so the segment parser runs.
    write_file(dir / "seg-0.idx", payload);
    write_file(dir / "MANIFEST", manifest_for_segment(payload.size() / 40));
  }

  try {
    index::LogStructuredIndex idx(dir);
    (void)idx.size();
  } catch (const FormatError&) {
    // Malformed input: the documented outcome.
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
