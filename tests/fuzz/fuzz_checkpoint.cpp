// Fuzz target: the AADCKPT1 checkpoint record stream.
//
// BufferCheckpointSource frames untrusted bytes into records and
// ChunkIndex::apply_checkpoint_record decodes them (opcode + entry /
// legacy base image). The contract under attack: arbitrary input either
// restores cleanly or throws FormatError — any other exception, assert,
// or sanitizer report is a finding.
#include <cstddef>
#include <cstdint>

#include "index/checkpoint.hpp"
#include "index/memory_index.hpp"
#include "util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace aadedupe;
  const ConstByteSpan stream(reinterpret_cast<const std::byte*>(data), size);
  (void)index::is_checkpoint_stream(stream);
  try {
    index::BufferCheckpointSource source(stream);
    index::MemoryChunkIndex idx;
    idx.restore(source);
  } catch (const FormatError&) {
    // Malformed input: the documented outcome.
  }
  return 0;
}
