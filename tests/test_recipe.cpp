// File-recipe store tests.
#include "container/recipe.hpp"

#include <gtest/gtest.h>

#include "hash/sha1.hpp"
#include "util/check.hpp"

namespace aadedupe::container {
namespace {

hash::Digest digest_of(const std::string& s) {
  return hash::Sha1::hash(as_bytes(s));
}

FileRecipe sample_recipe(const std::string& path, int chunks) {
  FileRecipe recipe;
  recipe.path = path;
  for (int i = 0; i < chunks; ++i) {
    RecipeEntry e;
    e.digest = digest_of(path + std::to_string(i));
    e.location = index::ChunkLocation{static_cast<std::uint64_t>(i + 1),
                                      static_cast<std::uint32_t>(i * 100),
                                      1000};
    recipe.entries.push_back(e);
    recipe.file_size += 1000;
  }
  return recipe;
}

TEST(RecipeStore, PutAndFind) {
  RecipeStore store;
  store.put(sample_recipe("a/b.doc", 3));
  const FileRecipe* found = store.find("a/b.doc");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->entries.size(), 3u);
  EXPECT_EQ(found->file_size, 3000u);
  EXPECT_EQ(store.find("missing"), nullptr);
}

TEST(RecipeStore, PutReplacesExisting) {
  RecipeStore store;
  store.put(sample_recipe("x", 2));
  store.put(sample_recipe("x", 5));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find("x")->entries.size(), 5u);
}

TEST(RecipeStore, RejectsEmptyPath) {
  RecipeStore store;
  FileRecipe r = sample_recipe("x", 1);
  r.path.clear();
  EXPECT_THROW(store.put(std::move(r)), PreconditionError);
}

TEST(RecipeStore, RejectsSizeMismatch) {
  RecipeStore store;
  FileRecipe r = sample_recipe("x", 2);
  r.file_size += 1;  // entries no longer sum to size
  EXPECT_THROW(store.put(std::move(r)), PreconditionError);
}

TEST(RecipeStore, EmptyFileRecipeAllowed) {
  RecipeStore store;
  FileRecipe r;
  r.path = "empty.txt";
  store.put(std::move(r));
  EXPECT_EQ(store.find("empty.txt")->file_size, 0u);
}

TEST(RecipeStore, PathsSorted) {
  RecipeStore store;
  store.put(sample_recipe("zz", 1));
  store.put(sample_recipe("aa", 1));
  const auto paths = store.paths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "aa");
  EXPECT_EQ(paths[1], "zz");
}

TEST(RecipeStore, SerializeRoundTrip) {
  RecipeStore store;
  store.put(sample_recipe("doc/a.doc", 4));
  store.put(sample_recipe("mp3/b.mp3", 1));
  store.put(FileRecipe{"tiny/empty", 0, "", {}});

  const RecipeStore restored = RecipeStore::deserialize(store.serialize());
  EXPECT_EQ(restored.size(), 3u);
  const FileRecipe* a = restored.find("doc/a.doc");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, *store.find("doc/a.doc"));
  EXPECT_EQ(*restored.find("tiny/empty"), *store.find("tiny/empty"));
}

TEST(RecipeStore, DeserializeRejectsTruncation) {
  RecipeStore store;
  store.put(sample_recipe("p", 2));
  ByteBuffer image = store.serialize();
  image.resize(image.size() - 5);
  EXPECT_THROW(RecipeStore::deserialize(image), FormatError);
}

TEST(RecipeStore, DeserializeRejectsTrailingBytes) {
  RecipeStore store;
  store.put(sample_recipe("p", 1));
  ByteBuffer image = store.serialize();
  image.push_back(std::byte{0});
  EXPECT_THROW(RecipeStore::deserialize(image), FormatError);
}

TEST(RecipeStore, DeserializeRejectsMissingHeader) {
  EXPECT_THROW(RecipeStore::deserialize(ByteBuffer(2)), FormatError);
}

}  // namespace
}  // namespace aadedupe::container
