// FlightRecorder tests: ring recording and wraparound, payload
// truncation, trigger bookkeeping and artifact dumps, the check.hpp
// failure hook, and — the reason the rings are seqlocks over atomics —
// concurrent writers racing a dump (run under TSan via the stress label).
#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace aadedupe::telemetry {
namespace {

namespace fs = std::filesystem;

std::string dump_of(const FlightRecorder& recorder) {
  JsonValue doc;
  recorder.fill_json(doc);
  return doc.dump(0);
}

/// Events of the calling thread's ring, in order, as "category|message".
std::vector<std::string> local_events(const FlightRecorder& recorder) {
  JsonValue doc;
  recorder.fill_json(doc);
  std::vector<std::string> out;
  for (const JsonValue& thread : doc.find("threads")->array_items()) {
    for (const JsonValue& event : thread.find("events")->array_items()) {
      out.push_back(event.find("category")->as_string() + "|" +
                    event.find("message")->as_string());
    }
  }
  return out;
}

TEST(FlightRecorder, RecordsEventsWithPayloadAndTimestamp) {
  FlightRecorder recorder(16);
  recorder.record(FlightEventKind::kLog, LogLevel::kWarn, 1.25, "upload",
                  "object lost");
  recorder.record(FlightEventKind::kSpanOpen, LogLevel::kTrace, 2.0, "chunk",
                  "doc");

  JsonValue doc;
  recorder.fill_json(doc);
  EXPECT_EQ(doc.find("schema")->as_string(), "aadedupe-flight/v1");
  EXPECT_EQ(recorder.thread_count(), 1u);
  const auto& threads = doc["threads"].array_items();
  ASSERT_EQ(threads.size(), 1u);
  const auto& events = threads[0].find("events")->array_items();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].find("t_s")->as_double(), 1.25);
  EXPECT_EQ(events[0].find("kind")->as_string(), "log");
  EXPECT_EQ(events[0].find("level")->as_string(), "warn");
  EXPECT_EQ(events[0].find("category")->as_string(), "upload");
  EXPECT_EQ(events[0].find("message")->as_string(), "object lost");
  EXPECT_EQ(events[1].find("kind")->as_string(), "span_open");
}

TEST(FlightRecorder, TruncatesOversizedPayloads) {
  FlightRecorder recorder(8);
  const std::string category(100, 'c');
  const std::string message(500, 'm');
  recorder.record(FlightEventKind::kLog, LogLevel::kInfo, 0.0, category,
                  message);
  const auto events = local_events(recorder);
  ASSERT_EQ(events.size(), 1u);
  const std::size_t bar = events[0].find('|');
  EXPECT_EQ(bar, FlightRecorder::kCategoryBytes);
  EXPECT_EQ(events[0].size() - bar - 1, FlightRecorder::kMessageBytes);
  EXPECT_EQ(events[0][0], 'c');
  EXPECT_EQ(events[0].back(), 'm');
}

TEST(FlightRecorder, RingKeepsOnlyTheMostRecentEvents) {
  FlightRecorder recorder(8);  // capacity rounds to a power of two
  const std::size_t capacity = recorder.capacity_per_thread();
  for (std::size_t i = 0; i < capacity + 5; ++i) {
    recorder.record(FlightEventKind::kLog, LogLevel::kInfo, double(i),
                    "seq", std::to_string(i));
  }
  const auto events = local_events(recorder);
  ASSERT_EQ(events.size(), capacity);
  // Oldest survivor is event #5, newest is the last one written.
  EXPECT_EQ(events.front(), "seq|5");
  EXPECT_EQ(events.back(), "seq|" + std::to_string(capacity + 4));
}

TEST(FlightRecorder, TriggerRecordsReasonAndWritesArtifact) {
  const fs::path path =
      fs::temp_directory_path() / "aad_test_flight_trigger.json";
  fs::remove(path);

  FlightRecorder recorder;
  recorder.set_clock([] { return 9.5; });
  recorder.record(FlightEventKind::kLog, LogLevel::kError, 9.0, "upload",
                  "it broke");
  EXPECT_EQ(recorder.trigger_count(), 0u);

  // No dump path yet: the trigger is recorded but nothing is written.
  recorder.trigger("retry_exhausted", "chunk/0042");
  EXPECT_EQ(recorder.trigger_count(), 1u);
  EXPECT_FALSE(fs::exists(path));

  recorder.set_dump_path(path.string());
  EXPECT_EQ(recorder.dump_path(), path.string());
  recorder.trigger("uploader_exception", "boom");
  EXPECT_EQ(recorder.trigger_count(), 2u);
  ASSERT_TRUE(fs::exists(path));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string artifact = buffer.str();
  EXPECT_NE(artifact.find("aadedupe-flight/v1"), std::string::npos);
  EXPECT_NE(artifact.find("retry_exhausted"), std::string::npos);
  EXPECT_NE(artifact.find("chunk/0042"), std::string::npos);
  EXPECT_NE(artifact.find("uploader_exception"), std::string::npos);
  EXPECT_NE(artifact.find("it broke"), std::string::npos);
  fs::remove(path);
}

TEST(FlightRecorder, DumpToFileReportsIoFailure) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.dump_to_file("/nonexistent-dir/x/flight.json"));
}

TEST(FlightRecorder, CheckFailureHookFiresTrigger) {
  FlightRecorder recorder;
  install_global_flight_recorder(&recorder);
  EXPECT_EQ(global_flight_recorder(), &recorder);

  EXPECT_THROW(AAD_EXPECTS(1 == 2), PreconditionError);
  EXPECT_EQ(recorder.trigger_count(), 1u);
  EXPECT_THROW(AAD_ENSURES(false), InvariantError);
  EXPECT_EQ(recorder.trigger_count(), 2u);

  const std::string dumped = dump_of(recorder);
  EXPECT_NE(dumped.find("precondition"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("invariant"), std::string::npos) << dumped;

  install_global_flight_recorder(nullptr);
  EXPECT_EQ(global_flight_recorder(), nullptr);
  EXPECT_THROW(AAD_EXPECTS(false), PreconditionError);
  EXPECT_EQ(recorder.trigger_count(), 2u);  // detached: no new trigger
}

TEST(FlightRecorder, ThreadPoolWorkerExceptionFiresTrigger) {
  FlightRecorder recorder;
  install_global_flight_recorder(&recorder);
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw InvariantError("worker died");
                                   }
                                 },
                                 /*grain=*/1),
               InvariantError);
  install_global_flight_recorder(nullptr);
  EXPECT_GE(recorder.trigger_count(), 1u);
  const std::string dumped = dump_of(recorder);
  EXPECT_NE(dumped.find("worker_exception"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("worker died"), std::string::npos) << dumped;
}

// The seqlock contract under fire: writers on several threads append
// while the main thread repeatedly snapshots. TSan (ctest -L stress on
// the tsan preset) proves the atomics discipline; the assertions prove a
// snapshot never contains a torn payload.
TEST(FlightRecorder, ConcurrentWritersRacingDumpStayConsistent) {
  FlightRecorder recorder(32);
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 2000;
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, &done, w] {
      // Fixed-width payloads: any tear would splice two generations and
      // break the uniform "w<id>-<count>" shape checked below.
      for (int i = 0; i < kEventsPerWriter; ++i) {
        char message[32];
        std::snprintf(message, sizeof message, "w%d-%06d", w, i);
        recorder.record(FlightEventKind::kLog, LogLevel::kDebug,
                        double(i), "stress", message);
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Snapshot continuously while the writers hammer their rings.
  std::size_t snapshots = 0;
  while (done.load(std::memory_order_relaxed) < kWriters) {
    JsonValue racing;
    recorder.fill_json(racing);
    ++snapshots;
  }
  for (auto& t : writers) t.join();
  EXPECT_GE(snapshots, 1u);

  JsonValue doc;
  recorder.fill_json(doc);
  std::size_t checked = 0;
  for (const JsonValue& thread : doc.find("threads")->array_items()) {
    for (const JsonValue& event : thread.find("events")->array_items()) {
      const std::string& message = event.find("message")->as_string();
      if (message.empty()) continue;  // main thread never wrote
      ASSERT_EQ(message.size(), 9u) << message;
      EXPECT_EQ(message[0], 'w') << message;
      EXPECT_EQ(message[2], '-') << message;
      ++checked;
    }
  }
  EXPECT_GE(checked, std::size_t{kWriters} * 16);
  EXPECT_GE(recorder.thread_count(), std::size_t{kWriters});
}

}  // namespace
}  // namespace aadedupe::telemetry
