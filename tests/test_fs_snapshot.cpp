// Real-filesystem snapshot tests: directory walking, kind inference,
// literal-content fidelity, and an end-to-end AA-Dedupe backup/restore of
// actual on-disk files.
#include "dataset/fs_snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "core/aa_dedupe.hpp"
#include "util/rng.hpp"

namespace aadedupe::dataset {
namespace {

namespace fs = std::filesystem;

class FsSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("aad_fs_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, ConstByteSpan bytes) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  void write_text(const std::string& rel, const std::string& text) {
    write(rel, as_bytes(text));
  }

  fs::path root_;
};

TEST_F(FsSnapshotTest, WalksTreeAndSortsPaths) {
  write_text("b.txt", "bee");
  write_text("a/nested.doc", "nested");
  write_text("a/zz.mp3", "zz");
  const Snapshot snap = snapshot_from_directory(root_);
  ASSERT_EQ(snap.files.size(), 3u);
  EXPECT_EQ(snap.files[0].path, "a/nested.doc");
  EXPECT_EQ(snap.files[1].path, "a/zz.mp3");
  EXPECT_EQ(snap.files[2].path, "b.txt");
}

TEST_F(FsSnapshotTest, ContentRoundTripsThroughMaterialize) {
  ByteBuffer payload(100000);
  Xoshiro256 rng(5);
  rng.fill(payload);
  write("data/blob.bin", payload);

  const Snapshot snap = snapshot_from_directory(root_);
  ASSERT_EQ(snap.files.size(), 1u);
  EXPECT_EQ(materialize(snap.files[0].content), payload);
  EXPECT_EQ(snap.files[0].size(), payload.size());
}

TEST_F(FsSnapshotTest, EmptyFileHandled) {
  write("empty.txt", {});
  const Snapshot snap = snapshot_from_directory(root_);
  ASSERT_EQ(snap.files.size(), 1u);
  EXPECT_EQ(snap.files[0].size(), 0u);
  EXPECT_TRUE(materialize(snap.files[0].content).empty());
}

TEST_F(FsSnapshotTest, KindInference) {
  write_text("x.mp3", "m");
  write_text("x.vmdk", "v");
  write_text("x.docx", "d");
  write_text("x.weird", "w");
  const Snapshot snap = snapshot_from_directory(root_);
  std::map<std::string, FileKind> kinds;
  for (const auto& f : snap.files) kinds[f.path] = f.kind;
  EXPECT_EQ(kinds.at("x.mp3"), FileKind::kMp3);
  EXPECT_EQ(kinds.at("x.vmdk"), FileKind::kVmdk);
  EXPECT_EQ(kinds.at("x.docx"), FileKind::kDoc);
  EXPECT_EQ(kinds.at("x.weird"), kUnknownKindFallback);
}

TEST_F(FsSnapshotTest, KindFromExtensionTable) {
  EXPECT_EQ(kind_from_extension("JPG"), FileKind::kJpg);  // case folded
  EXPECT_EQ(kind_from_extension("jpeg"), FileKind::kJpg);
  EXPECT_EQ(kind_from_extension("zip"), FileKind::kRar);
  EXPECT_EQ(kind_from_extension("qcow2"), FileKind::kVmdk);
  EXPECT_EQ(kind_from_extension("nonsense"), std::nullopt);
}

TEST_F(FsSnapshotTest, VersionTracksModification) {
  write_text("v.txt", "one");
  const Snapshot before = snapshot_from_directory(root_);
  // Rewrite with different size (mtime granularity alone can be coarse).
  write_text("v.txt", "two-two");
  const Snapshot after = snapshot_from_directory(root_);
  EXPECT_NE(before.files[0].version, after.files[0].version);
}

TEST_F(FsSnapshotTest, MaxFileBytesFilters) {
  write("big.bin", ByteBuffer(100000));
  write_text("small.txt", "s");
  FsSnapshotOptions options;
  options.max_file_bytes = 1000;
  const Snapshot snap = snapshot_from_directory(root_, options);
  ASSERT_EQ(snap.files.size(), 1u);
  EXPECT_EQ(snap.files[0].path, "small.txt");
}

TEST_F(FsSnapshotTest, ThrowsOnMissingDirectory) {
  EXPECT_THROW(snapshot_from_directory(root_ / "does-not-exist"),
               FormatError);
}

TEST_F(FsSnapshotTest, RealFilesBackupAndRestoreThroughAaDedupe) {
  // A small realistic tree: duplicate media, an edited document pair, a
  // tiny file, and a binary blob.
  ByteBuffer media(300000);
  Xoshiro256 rng(9);
  rng.fill(media);
  write("music/song1.mp3", media);
  write("music/song1_copy.mp3", media);  // duplicate content

  std::string document(150000, 'x');
  for (std::size_t i = 0; i < document.size(); i += 97) {
    document[i] = static_cast<char>('a' + (i % 23));
  }
  write_text("docs/report.doc", document);
  document.insert(70000, "EDITED PARAGRAPH ");
  write_text("docs/report_v2.doc", document);  // mostly-shared content

  write_text("notes/tiny.txt", "just a note");
  ByteBuffer blob(50000);
  rng.fill(blob);
  write("stuff/archive.zip", blob);

  const Snapshot snap = snapshot_from_directory(root_);
  ASSERT_EQ(snap.files.size(), 6u);

  cloud::CloudTarget target;
  core::AaDedupeScheme scheme(target);
  const auto report = scheme.backup(snap);
  // Duplicate mp3 must dedup away: shipped < logical.
  EXPECT_LT(report.transferred_bytes, report.dataset_bytes);

  for (const auto& file : snap.files) {
    ASSERT_EQ(scheme.restore_file(file.path), materialize(file.content))
        << file.path;
  }
}

}  // namespace
}  // namespace aadedupe::dataset
