// SimulatedDiskIndex decorator tests: pass-through correctness, LRU cache
// behaviour, and simulated-time charging.
#include "index/sim_disk_index.hpp"

#include <gtest/gtest.h>

#include "hash/sha1.hpp"
#include "index/memory_index.hpp"
#include "util/check.hpp"

namespace aadedupe::index {
namespace {

hash::Digest digest_of(int i) {
  return hash::Sha1::hash(as_bytes("sim-" + std::to_string(i)));
}

struct Fixture {
  double charged = 0.0;
  SimDiskOptions options;

  std::unique_ptr<SimulatedDiskIndex> make() {
    return std::make_unique<SimulatedDiskIndex>(
        std::make_unique<MemoryChunkIndex>(), options,
        [this](double s) { charged += s; });
  }
};

TEST(SimDiskIndex, PassThroughLookupInsert) {
  Fixture fx;
  auto idx = fx.make();
  EXPECT_FALSE(idx->lookup(digest_of(1)).has_value());
  EXPECT_TRUE(idx->insert(digest_of(1), ChunkLocation{5, 6, 7}));
  EXPECT_FALSE(idx->insert(digest_of(1), {}));
  const auto loc = idx->lookup(digest_of(1));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->container_id, 5u);
  EXPECT_EQ(idx->size(), 1u);
}

TEST(SimDiskIndex, MissChargesSeekHitIsFree) {
  Fixture fx;
  fx.options.miss_seek_seconds = 0.5;
  fx.options.insert_seconds = 0.0;
  auto idx = fx.make();

  idx->lookup(digest_of(1));  // cold miss
  EXPECT_DOUBLE_EQ(fx.charged, 0.5);
  idx->lookup(digest_of(1));  // now cached
  EXPECT_DOUBLE_EQ(fx.charged, 0.5);
  EXPECT_EQ(idx->cache_hits(), 1u);
  EXPECT_EQ(idx->cache_misses(), 1u);
}

TEST(SimDiskIndex, InsertChargesWriteCost) {
  Fixture fx;
  fx.options.miss_seek_seconds = 0.0;
  fx.options.insert_seconds = 0.25;
  auto idx = fx.make();
  idx->insert(digest_of(1), {});
  idx->insert(digest_of(2), {});
  EXPECT_DOUBLE_EQ(fx.charged, 0.5);
}

TEST(SimDiskIndex, InsertWarmsTheCache) {
  Fixture fx;
  fx.options.miss_seek_seconds = 1.0;
  fx.options.insert_seconds = 0.0;
  auto idx = fx.make();
  idx->insert(digest_of(1), {});
  idx->lookup(digest_of(1));  // cache hit: insert warmed it
  EXPECT_DOUBLE_EQ(fx.charged, 0.0);
}

TEST(SimDiskIndex, LruEvictsOldEntries) {
  Fixture fx;
  fx.options.cache_entries = 2;
  fx.options.miss_seek_seconds = 1.0;
  fx.options.insert_seconds = 0.0;
  auto idx = fx.make();

  idx->lookup(digest_of(1));  // miss, cached
  idx->lookup(digest_of(2));  // miss, cached
  idx->lookup(digest_of(3));  // miss, evicts 1
  EXPECT_DOUBLE_EQ(fx.charged, 3.0);
  idx->lookup(digest_of(1));  // miss again (evicted)
  EXPECT_DOUBLE_EQ(fx.charged, 4.0);
  idx->lookup(digest_of(3));  // still cached
  EXPECT_DOUBLE_EQ(fx.charged, 4.0);
}

TEST(SimDiskIndex, LruTouchKeepsHotEntryAlive) {
  Fixture fx;
  fx.options.cache_entries = 2;
  fx.options.miss_seek_seconds = 1.0;
  fx.options.insert_seconds = 0.0;
  auto idx = fx.make();

  idx->lookup(digest_of(1));
  idx->lookup(digest_of(2));
  idx->lookup(digest_of(1));  // touch 1 -> 2 becomes LRU
  idx->lookup(digest_of(3));  // evicts 2
  fx.charged = 0.0;
  idx->lookup(digest_of(1));  // still cached
  EXPECT_DOUBLE_EQ(fx.charged, 0.0);
  idx->lookup(digest_of(2));  // evicted -> miss
  EXPECT_DOUBLE_EQ(fx.charged, 1.0);
}

TEST(SimDiskIndex, SerializeDelegatesToInner) {
  Fixture fx;
  auto idx = fx.make();
  for (int i = 0; i < 20; ++i) idx->insert(digest_of(i), {});
  const ByteBuffer image = idx->serialize();

  MemoryChunkIndex plain;
  plain.deserialize(image);
  EXPECT_EQ(plain.size(), 20u);
}

TEST(SimDiskIndex, DeserializeResetsCache) {
  Fixture fx;
  fx.options.miss_seek_seconds = 1.0;
  fx.options.insert_seconds = 0.0;
  auto idx = fx.make();
  idx->insert(digest_of(1), {});

  MemoryChunkIndex donor;
  donor.insert(digest_of(1), {});
  idx->deserialize(donor.serialize());

  fx.charged = 0.0;
  idx->lookup(digest_of(1));  // cache was cleared -> miss
  EXPECT_DOUBLE_EQ(fx.charged, 1.0);
}

TEST(SimDiskIndex, StatsSurfaceSimulatedReads) {
  Fixture fx;
  auto idx = fx.make();
  idx->lookup(digest_of(1));
  idx->lookup(digest_of(2));
  EXPECT_EQ(idx->stats().disk_reads, 2u);
}

TEST(SimDiskIndex, RejectsNullInnerOrSink) {
  EXPECT_THROW(SimulatedDiskIndex(nullptr, {}, [](double) {}),
               PreconditionError);
  EXPECT_THROW(SimulatedDiskIndex(std::make_unique<MemoryChunkIndex>(), {},
                                  nullptr),
               PreconditionError);
}

}  // namespace
}  // namespace aadedupe::index
