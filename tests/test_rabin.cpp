// Rabin fingerprinting tests: the table-driven engine is validated against
// naive bit-by-bit polynomial division, and the rolling window against
// direct fingerprints of its content.
#include "hash/rabin.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace aadedupe::hash {
namespace {

class RabinAgainstNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RabinAgainstNaive, TableMatchesBitwiseDivision) {
  const std::size_t length = GetParam();
  aadedupe::ByteBuffer data(length);
  aadedupe::Xoshiro256 rng(length + 1);
  rng.fill(data);

  for (const std::uint64_t poly : {kRabinPolyA, kRabinPolyB}) {
    const RabinPoly engine(poly);
    EXPECT_EQ(engine.fingerprint(data),
              RabinPoly::naive_fingerprint(data, poly))
        << "length=" << length << " poly=" << poly;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RabinAgainstNaive,
                         ::testing::Values(0, 1, 2, 7, 8, 9, 31, 64, 100,
                                           255, 1024));

TEST(RabinPoly, EmptyMessageFingerprintIsZero) {
  const RabinPoly engine;
  EXPECT_EQ(engine.fingerprint({}), 0u);
}

TEST(RabinPoly, LeadingZerosAreAbsorbed) {
  // m(x)·x^64 mod P: leading zero bytes contribute nothing, so "00 ab" and
  // "ab" share a fingerprint — which is why CDC primes its window with
  // zeros harmlessly.
  const RabinPoly engine;
  const auto a = aadedupe::from_hex("00ab");
  const auto b = aadedupe::from_hex("ab");
  EXPECT_EQ(engine.fingerprint(a), engine.fingerprint(b));
}

TEST(RabinPoly, DifferentPolynomialsDisagree) {
  const RabinPoly pa(kRabinPolyA), pb(kRabinPolyB);
  aadedupe::ByteBuffer data(64);
  aadedupe::Xoshiro256 rng(5);
  rng.fill(data);
  EXPECT_NE(pa.fingerprint(data), pb.fingerprint(data));
}

TEST(RabinPoly, ShiftBytesMatchesAppendingZeros) {
  const RabinPoly engine;
  aadedupe::ByteBuffer msg = aadedupe::to_buffer("rabin");
  std::uint64_t fp = engine.fingerprint(msg);
  aadedupe::ByteBuffer extended = msg;
  extended.resize(msg.size() + 13, std::byte{0});
  EXPECT_EQ(engine.shift_bytes(fp, 13), engine.fingerprint(extended));
}

class RabinWindowProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RabinWindowProperty, RollingMatchesDirectFingerprintOfWindow) {
  const std::size_t window_size = GetParam();
  const RabinPoly engine;
  RabinWindow window(engine, window_size);

  aadedupe::ByteBuffer stream(window_size * 5 + 7);
  aadedupe::Xoshiro256 rng(window_size);
  rng.fill(stream);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::uint64_t rolled = window.push(stream[i]);
    // Direct fingerprint of the last `window_size` bytes, zero-padded on
    // the left while the stream is shorter than the window.
    aadedupe::ByteBuffer content(window_size, std::byte{0});
    const std::size_t have = std::min(window_size, i + 1);
    for (std::size_t k = 0; k < have; ++k) {
      content[window_size - have + k] = stream[i + 1 - have + k];
    }
    EXPECT_EQ(rolled, engine.fingerprint(content)) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, RabinWindowProperty,
                         ::testing::Values(1, 2, 8, 48, 64));

TEST(RabinWindow, ResetClearsState) {
  const RabinPoly engine;
  RabinWindow w(engine, 16);
  aadedupe::ByteBuffer data(64);
  aadedupe::Xoshiro256 rng(3);
  rng.fill(data);

  std::uint64_t first_pass = 0;
  for (std::byte b : data) first_pass = w.push(b);
  w.reset();
  EXPECT_EQ(w.value(), 0u);
  std::uint64_t second_pass = 0;
  for (std::byte b : data) second_pass = w.push(b);
  EXPECT_EQ(first_pass, second_pass);
}

TEST(RabinWindow, ContentOnlyDependsOnLastWindowBytes) {
  // Two streams with different prefixes but identical last-48-byte suffix
  // must produce the same fingerprint — the property CDC relies on.
  const RabinPoly engine;
  constexpr std::size_t kWindow = 48;

  aadedupe::ByteBuffer suffix(kWindow);
  aadedupe::Xoshiro256 rng(11);
  rng.fill(suffix);

  aadedupe::ByteBuffer prefix_a(100), prefix_b(333);
  rng.fill(prefix_a);
  rng.fill(prefix_b);

  auto run = [&](const aadedupe::ByteBuffer& prefix) {
    RabinWindow w(engine, kWindow);
    std::uint64_t fp = 0;
    for (std::byte b : prefix) fp = w.push(b);
    for (std::byte b : suffix) fp = w.push(b);
    return fp;
  };
  EXPECT_EQ(run(prefix_a), run(prefix_b));
}

TEST(Rabin96, TwelveByteDigest) {
  const Digest d = Rabin96::hash(aadedupe::as_bytes("hello world"));
  EXPECT_EQ(d.size(), 12u);
}

TEST(Rabin96, DeterministicAndStreaming) {
  aadedupe::ByteBuffer data(10000);
  aadedupe::Xoshiro256 rng(21);
  rng.fill(data);

  const Digest one_shot = Rabin96::hash(data);
  Rabin96 h;
  h.update(aadedupe::ConstByteSpan{data.data(), 123});
  h.update(aadedupe::ConstByteSpan{data.data() + 123, data.size() - 123});
  EXPECT_EQ(h.finish(), one_shot);
}

TEST(Rabin96, EmptyInputIsAllZero) {
  const Digest d = Rabin96::hash({});
  EXPECT_EQ(d.hex(), "000000000000000000000000");
}

TEST(Rabin96, NoCollisionsAcrossRandomBlocks) {
  // Weak-hash sanity: 20k random 1 KB blocks, no collisions expected
  // (collision probability ~ 2^-96 per pair).
  std::set<std::string> seen;
  aadedupe::Xoshiro256 rng(77);
  aadedupe::ByteBuffer block(1024);
  for (int i = 0; i < 20000; ++i) {
    rng.fill(block);
    seen.insert(Rabin96::hash(block).hex());
  }
  EXPECT_EQ(seen.size(), 20000u);
}

}  // namespace
}  // namespace aadedupe::hash
