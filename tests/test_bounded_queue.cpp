// Unit tests for the bounded MPMC queue — the pipeline's backpressure
// primitive.
#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace aadedupe {
namespace {

TEST(BoundedQueue, FifoOrderSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueue, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(7);
  EXPECT_EQ(q.try_pop(), 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), PreconditionError);
}

TEST(BoundedQueue, CloseUnblocksConsumers) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] {
    const auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PushAfterCloseFails) {
  BoundedQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
}

TEST(BoundedQueue, FullQueueBlocksUntilConsumed) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks until the consumer pops
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, MpmcStressConservesItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(16);

  std::atomic<long long> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  // Join producers (first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), total);
  const long long expected =
      static_cast<long long>(total) * (total - 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace aadedupe
