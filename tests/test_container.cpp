// Container format tests: builder/reader round trip, padding, oversized
// chunks, and malformed-input rejection.
#include "container/container.hpp"

#include <gtest/gtest.h>

#include "hash/md5.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aadedupe::container {
namespace {

ByteBuffer random_bytes(std::size_t n, std::uint64_t seed) {
  ByteBuffer data(n);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

TEST(ContainerBuilder, RoundTripThroughReader) {
  ContainerBuilder builder(42, 64 * 1024);
  std::vector<ByteBuffer> chunks;
  std::vector<hash::Digest> digests;
  std::vector<std::uint32_t> offsets;
  for (int i = 0; i < 10; ++i) {
    chunks.push_back(random_bytes(1000 + static_cast<std::size_t>(i) * 37,
                                  static_cast<std::uint64_t>(i)));
    digests.push_back(hash::Md5::hash(chunks.back()));
    offsets.push_back(builder.add(digests.back(), chunks.back()));
  }

  ContainerReader reader(builder.seal(/*pad=*/false));
  EXPECT_EQ(reader.id(), 42u);
  ASSERT_EQ(reader.descriptors().size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    const ChunkDescriptor& d = reader.descriptors()[i];
    EXPECT_EQ(d.digest, digests[i]);
    EXPECT_EQ(d.offset, offsets[i]);
    const ConstByteSpan payload = reader.chunk_at(d.offset, d.length);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           chunks[i].begin(), chunks[i].end()));
  }
}

TEST(ContainerBuilder, PaddedSealReachesFixedSize) {
  constexpr std::size_t kCapacity = 16 * 1024;
  ContainerBuilder builder(1, kCapacity);
  builder.add(hash::Md5::hash(as_bytes("x")), random_bytes(100, 1));
  const ByteBuffer padded = builder.seal(/*pad=*/true);
  const ByteBuffer unpadded = builder.seal(/*pad=*/false);
  // Padded payload section occupies exactly the capacity.
  EXPECT_EQ(padded.size() - (unpadded.size() - 100), kCapacity);
  EXPECT_GT(padded.size(), unpadded.size());
  // Both parse, and both serve the chunk identically.
  ContainerReader r1{ByteBuffer(padded)};
  ContainerReader r2{ByteBuffer(unpadded)};
  EXPECT_EQ(r1.descriptors().size(), 1u);
  EXPECT_EQ(r2.descriptors().size(), 1u);
}

TEST(ContainerBuilder, FitsHonoursCapacity) {
  ContainerBuilder builder(1, 1024);
  EXPECT_TRUE(builder.fits(100000));  // empty builder takes anything
  builder.add(hash::Md5::hash(as_bytes("a")), random_bytes(1000, 2));
  EXPECT_TRUE(builder.fits(24));
  EXPECT_FALSE(builder.fits(25));
}

TEST(ContainerBuilder, OversizedSingleChunkAccepted) {
  ContainerBuilder builder(7, 1024);
  const ByteBuffer big = random_bytes(10000, 3);
  builder.add(hash::Md5::hash(big), big);
  // Oversized containers are never padded (nothing to pad to).
  const ByteBuffer sealed = builder.seal(/*pad=*/true);
  ContainerReader reader{ByteBuffer(sealed)};
  EXPECT_EQ(reader.descriptors()[0].length, 10000u);
}

TEST(ContainerBuilder, RejectsEmptyChunk) {
  ContainerBuilder builder(1, 1024);
  EXPECT_THROW(builder.add(hash::Md5::hash({}), {}), PreconditionError);
}

TEST(ContainerBuilder, RejectsTinyCapacity) {
  EXPECT_THROW(ContainerBuilder(1, 512), PreconditionError);
}

TEST(ContainerReader, FindLocatesChunkByDigest) {
  ContainerBuilder builder(1, 64 * 1024);
  const ByteBuffer a = random_bytes(500, 4), b = random_bytes(600, 5);
  builder.add(hash::Md5::hash(a), a);
  builder.add(hash::Md5::hash(b), b);
  ContainerReader reader(builder.seal(false));

  const auto found = reader.find(hash::Md5::hash(b));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->length, 600u);
  EXPECT_FALSE(reader.find(hash::Md5::hash(as_bytes("missing"))).has_value());
}

TEST(ContainerReader, RejectsBadMagic) {
  ByteBuffer junk = random_bytes(64, 6);
  EXPECT_THROW(ContainerReader{std::move(junk)}, FormatError);
}

TEST(ContainerReader, RejectsTruncatedHeader) {
  EXPECT_THROW(ContainerReader{ByteBuffer(10)}, FormatError);
}

TEST(ContainerReader, RejectsTruncatedPayload) {
  ContainerBuilder builder(1, 64 * 1024);
  const ByteBuffer a = random_bytes(5000, 7);
  builder.add(hash::Md5::hash(a), a);
  ByteBuffer sealed = builder.seal(false);
  sealed.resize(sealed.size() - 100);
  EXPECT_THROW(ContainerReader{std::move(sealed)}, FormatError);
}

TEST(ContainerReader, RejectsDescriptorOutsidePayload) {
  // Craft a descriptor whose extent overruns the payload.
  ContainerBuilder builder(1, 64 * 1024);
  const ByteBuffer a = random_bytes(100, 8);
  builder.add(hash::Md5::hash(a), a);
  ByteBuffer sealed = builder.seal(false);
  // Descriptor layout after 24-byte header: size u8, 16-byte digest,
  // offset u32 at +17, length u32 at +21. Corrupt the length.
  store_le32(sealed.data() + 24 + 21, 0xffff);
  EXPECT_THROW(ContainerReader{std::move(sealed)}, FormatError);
}

TEST(ContainerReader, ChunkAtRejectsOutOfBounds) {
  ContainerBuilder builder(1, 64 * 1024);
  const ByteBuffer a = random_bytes(100, 9);
  builder.add(hash::Md5::hash(a), a);
  ContainerReader reader(builder.seal(false));
  EXPECT_THROW((void)reader.chunk_at(50, 51), FormatError);
  EXPECT_NO_THROW((void)reader.chunk_at(50, 50));
}

TEST(ContainerReader, EmptyContainerParses) {
  ContainerBuilder builder(11, 1024);
  ContainerReader reader(builder.seal(false));
  EXPECT_EQ(reader.id(), 11u);
  EXPECT_TRUE(reader.descriptors().empty());
}

}  // namespace
}  // namespace aadedupe::container
