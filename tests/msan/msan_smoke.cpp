// MemorySanitizer smoke driver (AAD_SANITIZE=memory).
//
// MSan builds are restricted to first-party code: the system gtest /
// benchmark binaries are not MSan-instrumented, and MSan reports every
// write from uninstrumented code as an uninitialized read. This driver
// exercises the paths where uninitialized reads would actually hide —
// the byte-format codecs (serialize/parse round trips), the fingerprint
// engines, and an end-to-end backup/restore/state-image cycle — with no
// test-framework dependency.
//
// Exit code 0 on success; prints the failing check and exits 1 otherwise
// (an MSan report aborts the process on its own).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "cloud/cloud_target.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/content.hpp"
#include "dataset/generator.hpp"
#include "hash/digest.hpp"
#include "hash/hash_kind.hpp"
#include "index/checkpoint.hpp"
#include "index/log_structured_index.hpp"
#include "index/memory_index.hpp"
#include "util/bytes.hpp"

namespace {

#define SMOKE_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "msan_smoke: FAILED %s (%s:%d)\n", #cond, \
                   __FILE__, __LINE__);                              \
      std::exit(1);                                                  \
    }                                                                \
  } while (false)

using namespace aadedupe;
namespace fs = std::filesystem;

hash::Digest digest_of(std::uint32_t i) {
  std::byte raw[20] = {};
  raw[0] = static_cast<std::byte>(i & 0xFF);
  raw[1] = static_cast<std::byte>((i >> 8) & 0xFF);
  return hash::Digest(ConstByteSpan(raw, sizeof raw));
}

// Every fingerprint engine over content with a known shape: digests of
// identical buffers must agree, which forces full reads of all lanes.
void smoke_hashes() {
  const ByteBuffer data(64 * 1024, std::byte{0x5A});
  for (const hash::HashKind kind :
       {hash::HashKind::kRabin96, hash::HashKind::kMd5,
        hash::HashKind::kSha1}) {
    const hash::Digest a = hash::compute_digest(kind, data);
    const hash::Digest b = hash::compute_digest(kind, data);
    SMOKE_CHECK(a == b);
    SMOKE_CHECK(a.size() > 0);
  }
}

// Checkpoint codec round trip through the in-memory index.
void smoke_checkpoint_roundtrip() {
  index::MemoryChunkIndex idx;
  for (std::uint32_t i = 0; i < 256; ++i) {
    idx.insert(digest_of(i), index::ChunkLocation{i, i * 8, 64});
  }
  index::BufferCheckpointSink sink;
  idx.checkpoint(sink);
  const ByteBuffer image = sink.take();

  index::MemoryChunkIndex restored;
  index::BufferCheckpointSource source(image);
  restored.restore(source);
  SMOKE_CHECK(restored.size() == idx.size());
}

// Log-structured shard: WAL append, seal, reopen (MANIFEST + segment
// parsers read back everything just written).
void smoke_log_structured() {
  const fs::path dir =
      fs::temp_directory_path() /
      ("aad_msan_smoke_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  {
    index::LogStructuredIndex idx(dir);
    for (std::uint32_t i = 0; i < 512; ++i) {
      idx.insert(digest_of(i), index::ChunkLocation{1, i, 32});
    }
    idx.flush();
  }
  {
    index::LogStructuredIndex reopened(dir);
    SMOKE_CHECK(reopened.size() == 512);
  }
  fs::remove_all(dir);
}

// End to end: backup, incremental session, byte-exact restore, and an
// AADSTAT2 state-image round trip into a fresh scheme.
void smoke_backup_cycle() {
  dataset::DatasetConfig config;
  config.seed = 7;
  config.session_bytes = 4ull * 1024 * 1024;
  dataset::DatasetGenerator generator(config);
  const dataset::Snapshot week0 = generator.initial();
  const dataset::Snapshot week1 = generator.next(week0);

  cloud::CloudTarget target;
  core::AaDedupeScheme scheme(target);
  scheme.backup(week0);
  scheme.backup(week1);

  const dataset::FileEntry& probe = week1.files.front();
  SMOKE_CHECK(scheme.restore_file(probe.path) ==
              dataset::materialize(probe.content));

  const ByteBuffer image = scheme.export_state();
  cloud::CloudTarget target2;
  core::AaDedupeScheme resumed(target2);
  resumed.import_state(image);
  SMOKE_CHECK(resumed.export_state().size() == image.size());
}

}  // namespace

int main() {
  smoke_hashes();
  smoke_checkpoint_roundtrip();
  smoke_log_structured();
  smoke_backup_cycle();
  std::printf("msan_smoke: OK\n");
  return 0;
}
