// Trace-driven workload tests.
#include "dataset/trace.hpp"

#include "dataset/fs_snapshot.hpp"

#include <gtest/gtest.h>

#include "core/aa_dedupe.hpp"
#include "hash/sha1.hpp"

namespace aadedupe::dataset {
namespace {

TEST(TraceCsv, ParsesRowsAndSkipsHeaderAndComments) {
  const std::string csv =
      "session,path,ext,size_bytes,version\n"
      "# a comment\n"
      "0,docs/report.doc,doc,183500,0\n"
      "1,docs/report.doc,doc,183500,1\n"
      "0,music/song.mp3,mp3,4200000,0\n";
  const auto entries = parse_trace_csv(csv);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].session, 0u);
  EXPECT_EQ(entries[0].path, "docs/report.doc");
  EXPECT_EQ(entries[0].kind, FileKind::kDoc);
  EXPECT_EQ(entries[0].size, 183500u);
  EXPECT_EQ(entries[1].version, 1u);
  EXPECT_EQ(entries[2].kind, FileKind::kMp3);
}

TEST(TraceCsv, UnknownExtensionFallsBack) {
  const auto entries = parse_trace_csv("0,x.weird,weird,100,0\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, kUnknownKindFallback);
}

TEST(TraceCsv, RejectsMalformedRows) {
  EXPECT_THROW(parse_trace_csv("0,only,three\n"), FormatError);
  EXPECT_THROW(parse_trace_csv("zero,p,doc,1,0\n"), FormatError);
  EXPECT_THROW(parse_trace_csv("0,,doc,1,0\n"), FormatError);
}

TEST(TraceContent, DeterministicAndSized) {
  const auto a = trace_content(FileKind::kDoc, "a/b.doc", 50000, 2);
  const auto b = trace_content(FileKind::kDoc, "a/b.doc", 50000, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 50000u);
  EXPECT_EQ(materialize(a).size(), 50000u);
}

TEST(TraceContent, DifferentPathsDiffer) {
  const auto a = materialize(trace_content(FileKind::kTxt, "p1.txt", 9000, 0));
  const auto b = materialize(trace_content(FileKind::kTxt, "p2.txt", 9000, 0));
  EXPECT_NE(a, b);
}

TEST(TraceContent, ConsecutiveVersionsShareMostBlocks) {
  // A version bump on a document touches ~10% of blocks: most 8K blocks
  // are byte-identical across versions.
  const std::uint64_t size = 512 * 1024;
  const auto v0 =
      materialize(trace_content(FileKind::kDoc, "doc/big.doc", size, 0));
  const auto v1 =
      materialize(trace_content(FileKind::kDoc, "doc/big.doc", size, 1));
  std::size_t same_blocks = 0, blocks = 0;
  for (std::size_t off = 0; off + kContentBlock <= size;
       off += kContentBlock) {
    ++blocks;
    if (std::equal(v0.begin() + static_cast<std::ptrdiff_t>(off),
                   v0.begin() + static_cast<std::ptrdiff_t>(off + kContentBlock),
                   v1.begin() + static_cast<std::ptrdiff_t>(off))) {
      ++same_blocks;
    }
  }
  EXPECT_GT(same_blocks, blocks * 7 / 10);
  EXPECT_LT(same_blocks, blocks);  // but something did change
}

TEST(TraceContent, CompressedVersionsAreFullyRewritten) {
  const auto v0 =
      materialize(trace_content(FileKind::kMp3, "m.mp3", 64 * 1024, 0));
  const auto v1 =
      materialize(trace_content(FileKind::kMp3, "m.mp3", 64 * 1024, 1));
  EXPECT_NE(v0, v1);
  // No block survives a re-encode.
  std::size_t same = 0;
  for (std::size_t off = 0; off + kContentBlock <= v0.size();
       off += kContentBlock) {
    if (std::equal(v0.begin() + static_cast<std::ptrdiff_t>(off),
                   v0.begin() + static_cast<std::ptrdiff_t>(off + kContentBlock),
                   v1.begin() + static_cast<std::ptrdiff_t>(off))) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0u);
}

TEST(TraceSessions, GroupsAndSorts) {
  const auto entries = parse_trace_csv(
      "1,b.txt,txt,1000,1\n"
      "0,z.txt,txt,1000,0\n"
      "0,a.txt,txt,1000,0\n");
  const auto sessions = sessions_from_trace(entries);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].session, 0u);
  ASSERT_EQ(sessions[0].files.size(), 2u);
  EXPECT_EQ(sessions[0].files[0].path, "a.txt");
  EXPECT_EQ(sessions[1].files[0].path, "b.txt");
}

TEST(TraceSessions, EndToEndBackupThroughAaDedupe) {
  // Two weekly scans of a small "user directory" described only by
  // metadata; content synthesized; whole pipeline must round-trip and the
  // unchanged files must dedup across sessions.
  std::string csv;
  for (int i = 0; i < 10; ++i) {
    const std::string row = "docs/f" + std::to_string(i) + ".doc,doc,60000,";
    csv += "0," + row + "0\n";
    // Session 1: file 0 modified (version 1), others unchanged.
    csv += "1," + row + (i == 0 ? "1" : "0") + "\n";
  }
  const auto sessions = sessions_from_trace(parse_trace_csv(csv));
  ASSERT_EQ(sessions.size(), 2u);

  cloud::CloudTarget target;
  core::AaDedupeScheme scheme(target);
  const auto r0 = scheme.backup(sessions[0]);
  const auto r1 = scheme.backup(sessions[1]);
  EXPECT_LT(r1.transferred_bytes, r0.transferred_bytes / 4)
      << "only one modified file should ship";

  for (const auto& file : sessions[1].files) {
    ASSERT_EQ(scheme.restore_file(file.path), materialize(file.content))
        << file.path;
  }
}

}  // namespace
}  // namespace aadedupe::dataset
