// Prometheus exposition tests: name sanitization, family grouping of
// labeled variants, the histogram `le` encoding, and sketch summaries.
#include "telemetry/exposition.hpp"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/metrics.hpp"

namespace aadedupe::telemetry {
namespace {

/// Count occurrences of `needle` in `text`.
std::size_t occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + 1)) {
    ++count;
  }
  return count;
}

TEST(PrometheusSanitize, RestrictsToTheMetricCharset) {
  EXPECT_EQ(prometheus_sanitize("chunk.latency_s"), "chunk_latency_s");
  EXPECT_EQ(prometheus_sanitize("a:b_C9"), "a:b_C9");  // legal as-is
  EXPECT_EQ(prometheus_sanitize("spaces and-dashes"), "spaces_and_dashes");
  // A leading digit is illegal; an underscore is prepended.
  EXPECT_EQ(prometheus_sanitize("9lives"), "_9lives");
  EXPECT_EQ(prometheus_sanitize(""), "_");
}

TEST(PrometheusText, CountersAndGaugesRenderOneSampleEach) {
  MetricsRegistry registry;
  registry.counter("container.bytes").add(1234);
  registry.gauge("pipeline.queue_depth").set(7);

  const std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE aad_container_bytes counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("aad_container_bytes 1234\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aad_pipeline_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("aad_pipeline_queue_depth 7\n"), std::string::npos);
}

TEST(PrometheusText, LabeledVariantsShareOneFamilyHeader) {
  MetricsRegistry registry;
  registry.counter("session.chunks", {{"tenant", "t00"}}).add(10);
  registry.counter("session.chunks", {{"tenant", "t01"}}).add(20);

  const std::string text = to_prometheus_text(registry.snapshot());
  // The format requires all samples of a family to be contiguous under a
  // single TYPE header — per-tenant variants must not fork the family.
  EXPECT_EQ(occurrences(text, "# TYPE aad_session_chunks counter"), 1u);
  EXPECT_NE(text.find("aad_session_chunks{tenant=\"t00\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("aad_session_chunks{tenant=\"t01\"} 20\n"),
            std::string::npos);
}

TEST(PrometheusText, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("session.chunks", {{"tenant", "a\"b\\c"}}).add(1);
  const std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("aad_session_chunks{tenant=\"a\\\"b\\\\c\"} 1\n"),
            std::string::npos);
}

TEST(PrometheusText, HistogramsRenderCumulativeLeBuckets) {
  MetricsRegistry registry;
  const Histogram bytes = registry.histogram("pipeline.item_bytes");
  bytes.observe(1);   // bucket upper bound 1
  bytes.observe(3);   // bucket upper bound 3
  bytes.observe(3);
  bytes.observe(100);  // bucket upper bound 127

  const std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE aad_pipeline_item_bytes histogram\n"),
            std::string::npos);
  // Cumulative: 1 at le=1, 3 at le=3, 4 at le=127 and at +Inf. Empty
  // buckets are elided.
  EXPECT_NE(text.find("aad_pipeline_item_bytes_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aad_pipeline_item_bytes_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("aad_pipeline_item_bytes_bucket{le=\"127\"} 4\n"),
            std::string::npos);
  EXPECT_EQ(occurrences(text, "_bucket{le=\"+Inf\"} 4"), 1u);
  EXPECT_NE(text.find("aad_pipeline_item_bytes_sum 107\n"),
            std::string::npos);
  EXPECT_NE(text.find("aad_pipeline_item_bytes_count 4\n"),
            std::string::npos);
}

TEST(PrometheusText, SketchesRenderAsSummariesWithQuantileLabels) {
  MetricsRegistry registry;
  const Sketch latency =
      registry.sketch("chunk.latency_s", {{"tenant", "t00"}});
  for (int i = 1; i <= 100; ++i) latency.observe(static_cast<double>(i));

  const std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE aad_chunk_latency_s summary\n"),
            std::string::npos);
  // One line per exported quantile, the tenant label alongside.
  for (const char* q : {"0.5", "0.9", "0.95", "0.99"}) {
    const std::string needle =
        std::string("aad_chunk_latency_s{tenant=\"t00\",quantile=\"") + q +
        "\"} ";
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(text.find("aad_chunk_latency_s_sum{tenant=\"t00\"} 5050\n"),
            std::string::npos);
  EXPECT_NE(text.find("aad_chunk_latency_s_count{tenant=\"t00\"} 100\n"),
            std::string::npos);
}

TEST(PrometheusText, PrefixNamespacesEveryFamily) {
  MetricsRegistry registry;
  registry.counter("chunks").add(1);
  const std::string text =
      to_prometheus_text(registry.snapshot(), "fleet_");
  EXPECT_NE(text.find("# TYPE fleet_chunks counter\n"), std::string::npos);
  EXPECT_EQ(text.find("aad_"), std::string::npos);
}

TEST(PrometheusText, EmptySnapshotRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(to_prometheus_text(registry.snapshot()), "");
}

}  // namespace
}  // namespace aadedupe::telemetry
