// FastCDC chunker tests: same contract as the other engines plus the
// boundary-shift resilience that makes it a CDC.
#include "chunk/fastcdc_chunker.hpp"

#include <gtest/gtest.h>

#include <set>

#include "chunk/cdc_chunker.hpp"
#include "hash/sha1.hpp"
#include "util/rng.hpp"

namespace aadedupe::chunk {
namespace {

ByteBuffer random_bytes(std::size_t n, std::uint64_t seed) {
  ByteBuffer data(n);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

class FastCdcCover : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FastCdcCover, SplitCoversInputExactly) {
  const FastCdcChunker chunker;
  const ByteBuffer data = random_bytes(GetParam(), GetParam() + 3);
  EXPECT_TRUE(is_exact_cover(chunker.split(data), data.size()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FastCdcCover,
                         ::testing::Values(0, 1, 100, 2048, 2049, 8192,
                                           100000, 1000000));

TEST(FastCdc, RespectsBounds) {
  const FastCdcChunker chunker;
  const ByteBuffer data = random_bytes(4 << 20, 1);
  const auto chunks = chunker.split(data);
  ASSERT_GT(chunks.size(), 1u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].length, chunker.params().min_size);
    EXPECT_LE(chunks[i].length, chunker.params().max_size);
  }
}

TEST(FastCdc, AverageNearExpected) {
  const FastCdcChunker chunker;
  const ByteBuffer data = random_bytes(8 << 20, 2);
  const auto chunks = chunker.split(data);
  const double average =
      static_cast<double>(data.size()) / static_cast<double>(chunks.size());
  EXPECT_GT(average, 4000.0);
  EXPECT_LT(average, 14000.0);
}

TEST(FastCdc, NormalizationTightensDistribution) {
  // With normalization, fewer chunks should hit the max-size forced cut
  // than with a single mask (level 0).
  const ByteBuffer data = random_bytes(8 << 20, 3);
  FastCdcParams normalized;
  normalized.normalization = 2;
  FastCdcParams classic;
  classic.normalization = 0;

  auto forced_cuts = [&](const FastCdcParams& params) {
    const FastCdcChunker chunker(params);
    std::size_t forced = 0;
    for (const ChunkRef& c : chunker.split(data)) {
      if (c.length == params.max_size) ++forced;
    }
    return forced;
  };
  EXPECT_LE(forced_cuts(normalized), forced_cuts(classic));
}

TEST(FastCdc, Deterministic) {
  const FastCdcChunker chunker;
  const ByteBuffer data = random_bytes(500000, 4);
  EXPECT_EQ(chunker.split(data), chunker.split(data));
}

TEST(FastCdc, ResynchronizesAfterInsert) {
  const FastCdcChunker chunker;
  const ByteBuffer original = random_bytes(1 << 20, 5);
  ByteBuffer edited;
  append(edited, ConstByteSpan{original.data(), 500});
  const ByteBuffer insert = random_bytes(131, 6);
  append(edited, insert);
  append(edited,
         ConstByteSpan{original.data() + 500, original.size() - 500});

  auto digests = [&](const ByteBuffer& data) {
    std::set<std::string> out;
    for (const ChunkRef& c : chunker.split(data)) {
      out.insert(hash::Sha1::hash(
                     ConstByteSpan{data}.subspan(c.offset, c.length))
                     .hex());
    }
    return out;
  };
  const auto a = digests(original);
  const auto b = digests(edited);
  std::size_t shared = 0;
  for (const auto& d : b) shared += a.count(d);
  EXPECT_GT(static_cast<double>(shared) / static_cast<double>(b.size()),
            0.9);
}

TEST(FastCdc, RejectsInvalidParams) {
  FastCdcParams bad;
  bad.expected_size = 3000;
  EXPECT_THROW(FastCdcChunker{bad}, PreconditionError);
  FastCdcParams bad2;
  bad2.normalization = 9;
  EXPECT_THROW(FastCdcChunker{bad2}, PreconditionError);
}

TEST(FastCdc, DifferentGearSeedsProduceDifferentBoundaries) {
  const ByteBuffer data = random_bytes(1 << 20, 7);
  const FastCdcChunker a(FastCdcParams{}, 1);
  const FastCdcChunker b(FastCdcParams{}, 2);
  EXPECT_NE(a.split(data), b.split(data));
}

}  // namespace
}  // namespace aadedupe::chunk
