// Integrity-scrub tests: silent cloud corruption, missing objects and
// lost keys must be detected before a restore needs the data.
#include <gtest/gtest.h>

#include "backup/keys.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe::core {
namespace {

dataset::DatasetConfig scrub_config(std::uint64_t seed = 111) {
  dataset::DatasetConfig config;
  config.seed = seed;
  config.session_bytes = 4ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(Scrub, CleanBackupPassesCompletely) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(scrub_config());
  const auto snapshot = gen.initial();
  scheme.backup(snapshot);

  const auto report = scheme.scrub();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.files_checked, snapshot.files.size());
  EXPECT_GT(report.chunks_checked, 0u);
  EXPECT_EQ(report.bytes_checked, snapshot.total_bytes());
  EXPECT_TRUE(report.damaged_paths.empty());
}

TEST(Scrub, DetectsBitRotInsideContainer) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(scrub_config());
  scheme.backup(gen.initial());

  // Flip one payload byte deep inside one container object.
  const auto keys = target.store().list("containers/");
  ASSERT_FALSE(keys.empty());
  auto object = target.store().get(keys[keys.size() / 2]);
  ASSERT_TRUE(object.has_value());
  (*object)[object->size() - 100] ^= std::byte{0x01};
  target.store().put(keys[keys.size() / 2], std::move(*object));

  const auto report = scheme.scrub();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.corrupt_chunks, 1u);
  EXPECT_FALSE(report.damaged_paths.empty());
}

TEST(Scrub, DetectsMissingContainer) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(scrub_config());
  scheme.backup(gen.initial());

  const auto keys = target.store().list("containers/");
  ASSERT_FALSE(keys.empty());
  target.store().remove(keys.front());

  const auto report = scheme.scrub();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.missing_containers, 1u);
}

TEST(Scrub, DetectsTruncatedContainer) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(scrub_config());
  scheme.backup(gen.initial());

  const auto keys = target.store().list("containers/");
  ASSERT_FALSE(keys.empty());
  auto object = target.store().get(keys.front());
  object->resize(object->size() / 2);
  target.store().put(keys.front(), std::move(*object));

  const auto report = scheme.scrub();
  EXPECT_FALSE(report.clean());
}

TEST(Scrub, EncryptedBackupScrubsThroughDecryption) {
  cloud::CloudTarget target;
  AaDedupeOptions options;
  options.convergent_encryption = true;
  options.passphrase = "pw";
  AaDedupeScheme scheme(target, options);
  dataset::DatasetGenerator gen(scrub_config());
  scheme.backup(gen.initial());

  EXPECT_TRUE(scheme.scrub().clean());

  // Corrupt one container: detected through the decryption path too.
  const auto keys = target.store().list("containers/");
  auto object = target.store().get(keys.front());
  (*object)[object->size() - 10] ^= std::byte{0xff};
  target.store().put(keys.front(), std::move(*object));
  EXPECT_FALSE(scheme.scrub().clean());
}

TEST(Scrub, UnknownSessionThrows) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  EXPECT_THROW(scheme.scrub(42), FormatError);
  // scrub() on an empty client is a clean no-op.
  EXPECT_TRUE(scheme.scrub().clean());
}

TEST(Scrub, ChecksSpecificRetainedSession) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(scrub_config());
  const auto sessions = gen.sessions(2);
  for (const auto& s : sessions) scheme.backup(s);

  const auto report = scheme.scrub(0);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.files_checked, sessions[0].files.size());
}

}  // namespace
}  // namespace aadedupe::core
