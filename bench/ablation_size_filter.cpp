// Ablation: the file size filter (paper Section III.B / Observation 1).
//
// Tiny files (< 10 KB) are ~61% of the file count but ~1% of the bytes;
// AA-Dedupe routes them around deduplication entirely and just packs them
// into containers. This bench runs the same workload with the filter at
// 10 KB (paper), 4 KB, and disabled (threshold 0 = dedup everything) and
// reports index load, chunk metadata, dedup time and effectiveness.
#include <cstdio>

#include "bench_common.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  const auto bench_config = bench::BenchConfig::from_env();
  std::printf("=== Ablation: file size filter threshold (2 sessions, ~%llu "
              "MiB each) ===\n\n",
              static_cast<unsigned long long>(bench_config.session_mib));

  metrics::TableWriter table({"threshold", "files filtered", "index entries",
                              "index lookups", "shipped", "requests",
                              "dedupe s", "DR"});
  for (const std::uint64_t threshold : {std::uint64_t{0},
                                        std::uint64_t{4} * 1024,
                                        std::uint64_t{10} * 1024}) {
    dataset::DatasetGenerator generator(bench_config.dataset_config());
    const auto snapshots = generator.sessions(2);

    cloud::CloudTarget target;
    core::AaDedupeOptions options;
    options.tiny_file_threshold = threshold;
    core::AaDedupeScheme scheme(target, options);

    std::uint64_t shipped = 0, requests = 0, filtered = 0, file_count = 0;
    double dedupe_seconds = 0, dr = 0;
    for (const auto& snapshot : snapshots) {
      const auto report = scheme.backup(snapshot);
      shipped += report.transferred_bytes;
      requests += report.upload_requests;
      dedupe_seconds += report.dedupe_seconds;
      dr = report.dedupe_ratio();
      for (const auto& f : snapshot.files) {
        ++file_count;
        if (f.size() < threshold) ++filtered;
      }
    }
    const auto stats = scheme.aa_index().total_stats();
    char filtered_cell[64];
    std::snprintf(filtered_cell, sizeof(filtered_cell), "%llu/%llu",
                  static_cast<unsigned long long>(filtered),
                  static_cast<unsigned long long>(file_count));
    table.add_row({threshold == 0 ? "off (dedup all)"
                                  : format_bytes(threshold),
                   filtered_cell,
                   metrics::TableWriter::integer(
                       scheme.aa_index().total_size()),
                   metrics::TableWriter::integer(stats.lookups),
                   format_bytes(shipped),
                   metrics::TableWriter::integer(requests),
                   metrics::TableWriter::num(dedupe_seconds, 2),
                   metrics::TableWriter::num(dr, 2)});
  }
  table.print();
  std::printf("\nshape checks: the filter removes the majority of FILES "
              "from the dedup path while shipped bytes barely move (tiny "
              "files hold ~1%% of capacity) — the Observation 1 trade. At "
              "this reduced scale each regular file contributes many "
              "chunks, so the *relative* index-entry savings are smaller "
              "than at the paper's 68,972-file scale, where per-file "
              "metadata dominates.\n");
  return 0;
}
