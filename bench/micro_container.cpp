// Google-benchmark microbenchmarks for container/recipe serialization and
// the crypto substrate.
#include <benchmark/benchmark.h>

#include "container/container.hpp"
#include "container/recipe.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/convergent.hpp"
#include "hash/md5.hpp"
#include "util/rng.hpp"

namespace {

using namespace aadedupe;

ByteBuffer make_data(std::size_t size, std::uint64_t seed) {
  ByteBuffer data(size);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

void BM_ContainerBuildSeal(benchmark::State& state) {
  const std::size_t chunk_size = 8192;
  const auto chunks = static_cast<std::size_t>(state.range(0));
  std::vector<ByteBuffer> payloads;
  std::vector<hash::Digest> digests;
  for (std::size_t i = 0; i < chunks; ++i) {
    payloads.push_back(make_data(chunk_size, i));
    digests.push_back(hash::Md5::hash(payloads.back()));
  }
  for (auto _ : state) {
    container::ContainerBuilder builder(1, chunks * chunk_size + 1024);
    for (std::size_t i = 0; i < chunks; ++i) {
      builder.add(digests[i], payloads[i]);
    }
    benchmark::DoNotOptimize(builder.seal(false));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunks * chunk_size));
}
BENCHMARK(BM_ContainerBuildSeal)->Arg(128);

void BM_ContainerParse(benchmark::State& state) {
  container::ContainerBuilder builder(1, 2 << 20);
  for (int i = 0; i < 128; ++i) {
    const ByteBuffer chunk = make_data(8192, static_cast<std::uint64_t>(i));
    builder.add(hash::Md5::hash(chunk), chunk);
  }
  const ByteBuffer sealed = builder.seal(false);
  for (auto _ : state) {
    container::ContainerReader reader{ByteBuffer(sealed)};
    benchmark::DoNotOptimize(reader.descriptors().size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sealed.size()));
}
BENCHMARK(BM_ContainerParse);

void BM_RecipeSerializeRoundTrip(benchmark::State& state) {
  container::RecipeStore store;
  for (int f = 0; f < 200; ++f) {
    container::FileRecipe recipe;
    recipe.path = "app/file" + std::to_string(f) + ".doc";
    recipe.tag = "doc";
    for (int c = 0; c < 20; ++c) {
      container::RecipeEntry e;
      e.digest = hash::Md5::hash(
          as_bytes(std::to_string(f) + "/" + std::to_string(c)));
      e.location = index::ChunkLocation{static_cast<std::uint64_t>(f),
                                        static_cast<std::uint32_t>(c), 8192};
      recipe.entries.push_back(e);
      recipe.file_size += 8192;
    }
    store.put(std::move(recipe));
  }
  for (auto _ : state) {
    const ByteBuffer image = store.serialize();
    benchmark::DoNotOptimize(container::RecipeStore::deserialize(image));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          200);
}
BENCHMARK(BM_RecipeSerializeRoundTrip);

void BM_ChaCha20(benchmark::State& state) {
  ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)), 3);
  crypto::ChaChaKey key{};
  const crypto::ChaChaNonce nonce{};
  for (auto _ : state) {
    crypto::chacha20_xor(key, nonce, 0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(8 << 10)->Arg(1 << 20);

void BM_ConvergentSealChunk(benchmark::State& state) {
  // Full secure-dedup cost per chunk: key derivation + encryption.
  const ByteBuffer chunk = make_data(8192, 4);
  for (auto _ : state) {
    const crypto::ChaChaKey key = crypto::derive_content_key(chunk);
    ByteBuffer ct = chunk;
    crypto::convergent_encrypt(key, ct);
    benchmark::DoNotOptimize(ct.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_ConvergentSealChunk);

}  // namespace

BENCHMARK_MAIN();
