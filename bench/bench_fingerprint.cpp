// Fingerprinting hot-path harness: measures the chunking and hashing
// throughputs that bound AA-Dedupe's client-side dedup rate, plus the
// end-to-end session wall clock under stream- vs file-granularity
// parallelism, and writes the results as BENCH_chunking.json.
//
// The CDC engine is measured twice: `cdc` is the shipping min-skip
// implementation, `cdc_reference` is the byte-at-a-time seed algorithm
// (CdcChunker::split_reference), so the speedup is computed live on the
// machine running the bench rather than against stale constants.
//
// Usage: bench_fingerprint [--out <path>] [--smoke]
//   --out    output JSON path (default: BENCH_chunking.json in the CWD)
//   --smoke  tiny inputs and a single timed repetition (CI smoke label)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chunk/cdc_chunker.hpp"
#include "chunk/fastcdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "core/aa_dedupe.hpp"
#include "core/policy.hpp"
#include "hash/batch_hasher.hpp"
#include "hash/md5.hpp"
#include "hash/rabin.hpp"
#include "hash/sha1.hpp"
#include "telemetry/build_info.hpp"
#include "telemetry/json.hpp"
#include "telemetry/log.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace aadedupe;

struct Config {
  std::string out_path = "BENCH_chunking.json";
  bool smoke = false;

  std::size_t buffer_bytes() const { return smoke ? (256u << 10) : (4u << 20); }
  double min_seconds() const { return smoke ? 0.005 : 0.25; }
};

ByteBuffer make_data(std::size_t size, std::uint64_t seed) {
  ByteBuffer data(size);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

struct Result {
  std::string name;
  double mb_per_s = 0.0;  // MB = 1e6 bytes
  std::uint64_t bytes = 0;
  std::uint64_t reps = 0;
};

/// Run `body` (which processes `bytes` per call) repeatedly until the
/// configured floor of wall time has elapsed; report aggregate MB/s.
Result measure(const Config& config, std::string name, std::uint64_t bytes,
               const std::function<void()>& body) {
  body();  // warm caches and lazy tables outside the timed region
  Result result;
  result.name = std::move(name);
  result.bytes = bytes;
  StopWatch watch;
  double elapsed = 0.0;
  do {
    body();
    ++result.reps;
    elapsed = watch.seconds();
  } while (elapsed < config.min_seconds());
  result.mb_per_s =
      static_cast<double>(bytes) * static_cast<double>(result.reps) /
      (elapsed * 1e6);
  std::printf("  %-24s %10.1f MB/s  (%llu reps)\n", result.name.c_str(),
              result.mb_per_s,
              static_cast<unsigned long long>(result.reps));
  return result;
}

dataset::Snapshot make_skewed_snapshot(const Config& config) {
  // One dominant CDC stream (~90% of the bytes) plus small side streams —
  // the workload shape where stream-granularity parallelism collapses to
  // single-threaded wall clock.
  const std::uint32_t doc_bytes =
      config.smoke ? (256u << 10) : (3u << 20);
  const std::uint32_t side_bytes = config.smoke ? (64u << 10) : (1u << 20);
  dataset::Snapshot snapshot;
  auto add_file = [&](std::string path, dataset::FileKind kind,
                      std::uint64_t seed, std::uint32_t bytes) {
    dataset::FileEntry entry;
    entry.path = std::move(path);
    entry.kind = kind;
    entry.content.kind = kind;
    entry.content.segments.emplace_back(dataset::Segment::Type::kUnique,
                                        seed, bytes);
    snapshot.files.push_back(std::move(entry));
  };
  for (std::uint64_t i = 0; i < 8; ++i) {
    add_file("doc/skew" + std::to_string(i) + ".doc",
             dataset::FileKind::kDoc, 1000 + i, doc_bytes);
  }
  add_file("mp3/small0.mp3", dataset::FileKind::kMp3, 2000, side_bytes);
  add_file("vm/small0.vmdk", dataset::FileKind::kVmdk, 2001, side_bytes);
  add_file("txt/small0.txt", dataset::FileKind::kTxt, 2002, side_bytes / 2);
  return snapshot;
}

/// Minimum paired rounds for the overhead probes: enough for the median
/// to reject scheduler-spike outliers, odd so it is a measured round.
constexpr std::size_t kMinPairedRounds = 9;

/// Median of per-round paired time ratios (sorts in place). Paired
/// measurement cancels drift; the median shrugs off the spikes that make
/// a sum-of-times estimate swing several percent.
double median_ratio_of(std::vector<double>& ratios) {
  std::sort(ratios.begin(), ratios.end());
  const std::size_t mid = ratios.size() / 2;
  return ratios.size() % 2 == 1 ? ratios[mid]
                                : 0.5 * (ratios[mid - 1] + ratios[mid]);
}

Result measure_session(const Config& config,
                       core::ParallelGranularity granularity,
                       const dataset::Snapshot& snapshot) {
  core::AaDedupeOptions options;
  options.granularity = granularity;
  const char* name = granularity == core::ParallelGranularity::kStream
                         ? "session_stream_grain"
                         : "session_file_grain";
  return measure(config, name, snapshot.total_bytes(), [&] {
    cloud::CloudTarget target;
    core::AaDedupeScheme scheme(target, options);
    scheme.backup(snapshot);
  });
}

struct DerivedKeys {
  double cdc_speedup = 0.0;
  double session_speedup = 0.0;
  double telemetry_overhead_pct = 0.0;
  double profiler_overhead_pct = 0.0;
  double ops_overhead_pct = 0.0;
  double sha1_batch_speedup = 0.0;
  double md5_batch_speedup = 0.0;
  double fingerprint_speedup_vs_seed = 0.0;
};

void write_json(const Config& config, const std::vector<Result>& results,
                const DerivedKeys& keys) {
  telemetry::JsonValue doc;
  doc["benchmark"] = "fingerprinting hot path";
  doc["units"] = "MB/s (MB = 1e6 bytes)";
  telemetry::BuildInfo::current().fill_json(doc["build"]);
  doc["smoke"] = config.smoke;
  doc["buffer_bytes"] = static_cast<std::uint64_t>(config.buffer_bytes());
  telemetry::JsonValue& mbps = doc["results"].make_object();
  for (const Result& result : results) {
    mbps[result.name] = result.mb_per_s;
  }
  doc["cdc_speedup_vs_reference"] = keys.cdc_speedup;
  doc["session_file_vs_stream_speedup"] = keys.session_speedup;
  doc["telemetry_overhead_pct_cdc_fingerprint"] = keys.telemetry_overhead_pct;
  doc["profiler_overhead_pct_cdc_fingerprint"] = keys.profiler_overhead_pct;
  doc["ops_overhead_pct_cdc_fingerprint"] = keys.ops_overhead_pct;
  doc["sha1_batch_speedup_vs_scalar"] = keys.sha1_batch_speedup;
  doc["md5_batch_speedup_vs_scalar"] = keys.md5_batch_speedup;
  doc["cdc_fingerprint_speedup_vs_seed"] = keys.fingerprint_speedup_vs_seed;
  // Reference numbers measured on the same container before each rework
  // (Release, 4 MiB random input), kept here so acceptance ratios survive
  // even if the retained reference implementations drift.
  telemetry::JsonValue& seed = doc["recorded_seed_mbps"];
  seed["cdc_4mib_random"] = 140.427;
  seed["cdc_4mib_zeros"] = 145.810;
  seed["rabin_rolling_window"] = 148.711;
  // chunk_and_fingerprint on the dynamic category before the batched
  // engine + FastCDC promotion (PR 7): scalar SHA-1 over Rabin CDC chunks.
  seed["cdc_fingerprint_plain"] = 115.896;

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session",
            "cannot open %s for writing", config.out_path.c_str());
    std::exit(1);
  }
  const std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      AAD_LOG(&telemetry::stderr_logger(), kError, "session",
              "usage: %s [--out <path>] [--smoke]", argv[0]);
      return 2;
    }
  }

  const std::size_t n = config.buffer_bytes();
  const ByteBuffer random = make_data(n, n + 7);
  const ByteBuffer zeros(n, std::byte{0});
  std::vector<Result> results;

  std::printf("chunking (%zu byte random input):\n", n);
  const chunk::CdcChunker cdc;
  const chunk::FastCdcChunker fastcdc;
  const chunk::StaticChunker sc;
  const chunk::WholeFileChunker wfc;
  // Each body sinks the whole output container (not a volatile copy of its
  // size, which used to let the optimizer discard the split itself and
  // report physically impossible numbers for the boundary-only chunkers).
  // Note: `sc` and `wfc` only emit boundary metadata — they never touch the
  // payload bytes — so their MB/s remain far above memory bandwidth. They
  // are real measurements of O(n/8KiB) and O(1) work, not hash throughput.
  results.push_back(measure(config, "cdc", n, [&] {
    const auto chunks = cdc.split(random);
    bench::do_not_optimize(chunks);
    bench::clobber_memory();
  }));
  results.push_back(measure(config, "cdc_reference", n, [&] {
    const auto chunks = cdc.split_reference(random);
    bench::do_not_optimize(chunks);
    bench::clobber_memory();
  }));
  results.push_back(measure(config, "cdc_zeros", n, [&] {
    const auto chunks = cdc.split(zeros);
    bench::do_not_optimize(chunks);
    bench::clobber_memory();
  }));
  results.push_back(measure(config, "fastcdc", n, [&] {
    const auto chunks = fastcdc.split(random);
    bench::do_not_optimize(chunks);
    bench::clobber_memory();
  }));
  results.push_back(measure(config, "sc", n, [&] {
    const auto chunks = sc.split(random);
    bench::do_not_optimize(chunks);
    bench::clobber_memory();
  }));
  results.push_back(measure(config, "wfc", n, [&] {
    const auto chunks = wfc.split(random);
    bench::do_not_optimize(chunks);
    bench::clobber_memory();
  }));

  std::printf("fingerprints (%zu byte input):\n", n);
  results.push_back(measure(config, "rabin96", n, [&] {
    const hash::Digest d = hash::Rabin96::hash(random);
    bench::do_not_optimize(d);
  }));
  results.push_back(measure(config, "sha1", n, [&] {
    const hash::Digest d = hash::Sha1::hash(random);
    bench::do_not_optimize(d);
  }));
  results.push_back(measure(config, "md5", n, [&] {
    const hash::Digest d = hash::Md5::hash(random);
    bench::do_not_optimize(d);
  }));
  const hash::RabinPoly poly;
  hash::RabinWindow window(poly, 48);
  results.push_back(measure(config, "rabin_rolling_window", n, [&] {
    std::uint64_t fp = 0;
    for (std::byte b : random) fp = window.push(b);
    bench::do_not_optimize(fp);
  }));

  // Batched engine, every compiled rung: the input sliced into 8 KiB
  // chunks (the paper's expected chunk size) and fingerprinted through
  // BatchHasher in one call per rep.
  std::vector<ConstByteSpan> chunk_views;
  for (std::size_t off = 0; off + 8192 <= n; off += 8192) {
    chunk_views.emplace_back(random.data() + off, std::size_t{8192});
  }
  std::printf("batched fingerprints (%zu x 8 KiB chunks per call):\n",
              chunk_views.size());
  std::vector<hash::Digest> batch_out;
  double sha1_scalar_mbps = 0.0, sha1_best_mbps = 0.0;
  double md5_scalar_mbps = 0.0, md5_best_mbps = 0.0;
  for (hash::Sha1Impl impl : hash::BatchHasher::supported_sha1_impls()) {
    const hash::BatchHasher hasher(impl, hash::Md5Impl::kScalar);
    const Result r = measure(
        config, "sha1_batch_" + std::string(hash::to_string(impl)), n, [&] {
          hasher.hash_batch(hash::HashKind::kSha1, chunk_views, batch_out);
          bench::do_not_optimize(batch_out);
        });
    if (impl == hash::Sha1Impl::kScalar) sha1_scalar_mbps = r.mb_per_s;
    sha1_best_mbps = std::max(sha1_best_mbps, r.mb_per_s);
    results.push_back(r);
  }
  for (hash::Md5Impl impl : hash::BatchHasher::supported_md5_impls()) {
    const hash::BatchHasher hasher(hash::Sha1Impl::kScalar, impl);
    const Result r = measure(
        config, "md5_batch_" + std::string(hash::to_string(impl)), n, [&] {
          hasher.hash_batch(hash::HashKind::kMd5, chunk_views, batch_out);
          bench::do_not_optimize(batch_out);
        });
    if (impl == hash::Md5Impl::kScalar) md5_scalar_mbps = r.mb_per_s;
    md5_best_mbps = std::max(md5_best_mbps, r.mb_per_s);
    results.push_back(r);
  }
  const double sha1_batch_speedup = sha1_best_mbps / sha1_scalar_mbps;
  const double md5_batch_speedup = md5_best_mbps / md5_scalar_mbps;
  std::printf("sha1 batch speedup vs scalar: %.2fx\n", sha1_batch_speedup);
  std::printf("md5 batch speedup vs scalar: %.2fx\n", md5_batch_speedup);

  std::printf("telemetry overhead (chunk_and_fingerprint, dynamic policy):\n");
  const core::DedupPolicy dedup_policy;
  const core::CategoryPolicy doc_policy =
      dedup_policy.for_kind(dataset::FileKind::kDoc);
  telemetry::Telemetry fp_telemetry;
  const auto fp_plain_body = [&] {
    const core::FileChunkPlan plan =
        core::chunk_and_fingerprint(doc_policy, random);
    bench::do_not_optimize(plan);
    bench::clobber_memory();
  };
  const auto fp_traced_body = [&] {
    const core::FileChunkPlan plan =
        core::chunk_and_fingerprint(doc_policy, random, &fp_telemetry, "doc");
    bench::do_not_optimize(plan);
    bench::clobber_memory();
  };
  // Interleave the two variants rep-for-rep so clock-frequency drift and
  // cache-warmth asymmetry cancel instead of masquerading as overhead.
  fp_plain_body();
  fp_traced_body();
  Result fp_plain, fp_traced;
  fp_plain.name = "cdc_fingerprint_plain";
  fp_traced.name = "cdc_fingerprint_telemetry";
  fp_plain.bytes = fp_traced.bytes = n;
  double plain_s = 0.0, traced_s = 0.0;
  const auto plain_rep = [&] {
    StopWatch watch;
    fp_plain_body();
    const double elapsed = watch.seconds();
    plain_s += elapsed;
    ++fp_plain.reps;
    return elapsed;
  };
  const auto traced_rep = [&] {
    StopWatch watch;
    fp_traced_body();
    const double elapsed = watch.seconds();
    traced_s += elapsed;
    ++fp_traced.reps;
    return elapsed;
  };
  // One rep of each per round, alternating which variant leads; the
  // gated number is the MEDIAN per-round ratio (see median_ratio_of) —
  // this key carries an absolute 2% ceiling in report.py, so it cannot
  // afford the multi-percent swings of a throughput-quotient estimate.
  std::vector<double> telemetry_ratios;
  for (std::uint64_t round = 0;
       telemetry_ratios.size() < kMinPairedRounds ||
       plain_s < config.min_seconds() || traced_s < config.min_seconds();
       ++round) {
    double rep_plain_s = 0.0, rep_traced_s = 0.0;
    if ((round & 1) == 0) {
      rep_plain_s = plain_rep();
      rep_traced_s = traced_rep();
    } else {
      rep_traced_s = traced_rep();
      rep_plain_s = plain_rep();
    }
    telemetry_ratios.push_back(rep_traced_s / rep_plain_s);
  }
  fp_plain.mb_per_s = static_cast<double>(n) *
                      static_cast<double>(fp_plain.reps) / (plain_s * 1e6);
  fp_traced.mb_per_s = static_cast<double>(n) *
                       static_cast<double>(fp_traced.reps) / (traced_s * 1e6);
  std::printf("  %-24s %10.1f MB/s  (%llu reps)\n", fp_plain.name.c_str(),
              fp_plain.mb_per_s,
              static_cast<unsigned long long>(fp_plain.reps));
  std::printf("  %-24s %10.1f MB/s  (%llu reps)\n", fp_traced.name.c_str(),
              fp_traced.mb_per_s,
              static_cast<unsigned long long>(fp_traced.reps));
  results.push_back(fp_plain);
  results.push_back(fp_traced);
  const double telemetry_overhead_pct =
      100.0 * (median_ratio_of(telemetry_ratios) - 1.0);
  std::printf("telemetry overhead on CDC fingerprint path: %.2f%% "
              "(median of %zu paired rounds)\n",
              telemetry_overhead_pct, telemetry_ratios.size());

  // Profiler overhead: the same traced body with the SIGPROF sampling
  // profiler running vs idle, interleaved block-for-block (start/stop is
  // two syscalls, amortized over kBlock reps) so frequency drift cancels.
  std::printf("profiler overhead (chunk_and_fingerprint, traced):\n");
  // 1 kHz requested; coarse-HZ kernels clamp ITIMER_PROF to the ~10 ms
  // jiffy, and start() re-arms the timer — so a block must outlast 10 ms
  // of CPU for the handler to fire at all. Size the block from the rep
  // time the telemetry probe just measured: ~40 ms per block spans a few
  // kernel ticks yet stays short enough for dozens of paired rounds on
  // the full-size input (a fixed rep count made full-scale blocks ~0.3 s
  // — too few rounds for the median to settle).
  const double avg_rep_s =
      traced_s / static_cast<double>(std::max<std::uint64_t>(
                     fp_traced.reps, 1));
  const std::uint64_t kBlock = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(0.04 / std::max(avg_rep_s, 1e-6))),
      1, 4096);
  telemetry::SpanProfiler profiler(1000);
  Result fp_bare, fp_profiled;
  fp_bare.name = "cdc_fingerprint_noprofiler";
  fp_profiled.name = "cdc_fingerprint_profiler";
  fp_bare.bytes = fp_profiled.bytes = n;
  double bare_s = 0.0, profiled_s = 0.0;
  // A sub-percent difference needs more integration time than the other
  // probes: floor at 0.25s per side even in smoke, and alternate which
  // variant leads each round so slow drift cancels (block interleaving
  // alone leaves a systematic lead/lag bias).
  const double probe_min_s = std::max(config.min_seconds(), 0.25);
  const auto bare_block = [&] {
    StopWatch watch;
    for (std::uint64_t k = 0; k < kBlock; ++k) fp_traced_body();
    const double elapsed = watch.seconds();
    bare_s += elapsed;
    fp_bare.reps += kBlock;
    return elapsed;
  };
  std::uint64_t profiler_samples = 0;
  const auto profiled_block = [&] {
    profiler.start();
    StopWatch watch;
    for (std::uint64_t k = 0; k < kBlock; ++k) fp_traced_body();
    const double elapsed = watch.seconds();
    profiler.stop();
    profiled_s += elapsed;
    profiler_samples += profiler.sample_count();
    fp_profiled.reps += kBlock;
    return elapsed;
  };
  // Each round runs one block of each variant (alternating lead) and
  // records the paired ratio; the MEDIAN ratio is what the gate sees.
  // Paired blocks cancel drift, the median shrugs off the scheduler
  // spikes that make a sum-of-times estimate swing several percent.
  // This key carries the same 2% absolute ceiling as the telemetry one
  // but each round is a whole multi-rep block, so the time floor alone
  // yields too few rounds for a trustworthy median — require more rounds
  // than the per-rep probes need.
  constexpr std::size_t kProfilerRounds = 51;
  std::vector<double> round_ratios;
  for (std::uint64_t round = 0;
       round_ratios.size() < kProfilerRounds || bare_s < probe_min_s ||
       profiled_s < probe_min_s;
       ++round) {
    double block_bare_s = 0.0, block_profiled_s = 0.0;
    if ((round & 1) == 0) {
      block_bare_s = bare_block();
      block_profiled_s = profiled_block();
    } else {
      block_profiled_s = profiled_block();
      block_bare_s = bare_block();
    }
    round_ratios.push_back(block_profiled_s / block_bare_s);
  }
  const double median_ratio = median_ratio_of(round_ratios);
  fp_bare.mb_per_s = static_cast<double>(n) *
                     static_cast<double>(fp_bare.reps) / (bare_s * 1e6);
  fp_profiled.mb_per_s = static_cast<double>(n) *
                         static_cast<double>(fp_profiled.reps) /
                         (profiled_s * 1e6);
  std::printf("  %-26s %10.1f MB/s  (%llu reps)\n", fp_bare.name.c_str(),
              fp_bare.mb_per_s,
              static_cast<unsigned long long>(fp_bare.reps));
  std::printf("  %-26s %10.1f MB/s  (%llu reps, %llu samples)\n",
              fp_profiled.name.c_str(), fp_profiled.mb_per_s,
              static_cast<unsigned long long>(fp_profiled.reps),
              static_cast<unsigned long long>(profiler_samples));
  results.push_back(fp_bare);
  results.push_back(fp_profiled);
  const double profiler_overhead_pct = 100.0 * (median_ratio - 1.0);
  std::printf("profiler overhead on CDC fingerprint path: %.2f%% "
              "(median of %zu paired rounds)\n",
              profiler_overhead_pct, round_ratios.size());

  // Ops-plane overhead: the same traced body against a context with the
  // full live ops plane attached — HealthMonitor hooked into the tracer
  // (two relaxed atomic updates per span open/close) and an OpsServer
  // listening on an ephemeral loopback port with nobody scraping — vs the
  // plain traced context. This is the enabled-but-idle cost a user pays
  // for exporting AAD_OPS_PORT on every backup; the gate ceiling is 1%.
  std::printf("ops-plane overhead (chunk_and_fingerprint, traced):\n");
  telemetry::Telemetry ops_telemetry;
  telemetry::HealthMonitor ops_health(ops_telemetry);
  telemetry::OpsServer ops_server;
  ops_server.wire_telemetry(ops_telemetry);
  ops_server.start();
  const auto fp_ops_body = [&] {
    const core::FileChunkPlan plan = core::chunk_and_fingerprint(
        doc_policy, random, &ops_telemetry, "doc");
    bench::do_not_optimize(plan);
    bench::clobber_memory();
  };
  fp_ops_body();  // warm the ops context outside the timed region
  Result fp_noops, fp_ops;
  fp_noops.name = "cdc_fingerprint_noops";
  fp_ops.name = "cdc_fingerprint_ops_plane";
  fp_noops.bytes = fp_ops.bytes = n;
  double noops_s = 0.0, ops_s = 0.0;
  // Block-paired like the profiler probe, not rep-paired like the
  // telemetry one: this key carries a 1% absolute ceiling — half the
  // other probes' budget — and single-rep pairs on a 1-core host leave
  // the median ratio a full percent wide. Amortizing kBlock reps per
  // timing sample shrinks per-round variance below the ceiling.
  const auto noops_block = [&] {
    StopWatch watch;
    for (std::uint64_t k = 0; k < kBlock; ++k) fp_traced_body();
    const double elapsed = watch.seconds();
    noops_s += elapsed;
    fp_noops.reps += kBlock;
    return elapsed;
  };
  const auto ops_block = [&] {
    StopWatch watch;
    for (std::uint64_t k = 0; k < kBlock; ++k) fp_ops_body();
    const double elapsed = watch.seconds();
    ops_s += elapsed;
    fp_ops.reps += kBlock;
    return elapsed;
  };
  // One block of each per round, alternating lead; gate on the MEDIAN
  // per-round ratio.
  std::vector<double> ops_ratios;
  for (std::uint64_t round = 0;
       ops_ratios.size() < kProfilerRounds || noops_s < probe_min_s ||
       ops_s < probe_min_s;
       ++round) {
    double block_noops_s = 0.0, block_ops_s = 0.0;
    if ((round & 1) == 0) {
      block_noops_s = noops_block();
      block_ops_s = ops_block();
    } else {
      block_ops_s = ops_block();
      block_noops_s = noops_block();
    }
    ops_ratios.push_back(block_ops_s / block_noops_s);
  }
  ops_server.stop();
  fp_noops.mb_per_s = static_cast<double>(n) *
                      static_cast<double>(fp_noops.reps) / (noops_s * 1e6);
  fp_ops.mb_per_s = static_cast<double>(n) *
                    static_cast<double>(fp_ops.reps) / (ops_s * 1e6);
  std::printf("  %-24s %10.1f MB/s  (%llu reps)\n", fp_noops.name.c_str(),
              fp_noops.mb_per_s,
              static_cast<unsigned long long>(fp_noops.reps));
  std::printf("  %-24s %10.1f MB/s  (%llu reps)\n", fp_ops.name.c_str(),
              fp_ops.mb_per_s, static_cast<unsigned long long>(fp_ops.reps));
  results.push_back(fp_noops);
  results.push_back(fp_ops);
  const double ops_overhead_pct = 100.0 * (median_ratio_of(ops_ratios) - 1.0);
  std::printf("ops-plane overhead on CDC fingerprint path: %.2f%% "
              "(median of %zu paired rounds, server idle on port %u)\n",
              ops_overhead_pct, ops_ratios.size(), ops_server.port());

  std::printf("end-to-end session (skewed application streams):\n");
  const dataset::Snapshot snapshot = make_skewed_snapshot(config);
  const Result by_stream =
      measure_session(config, core::ParallelGranularity::kStream, snapshot);
  const Result by_file =
      measure_session(config, core::ParallelGranularity::kFile, snapshot);
  results.push_back(by_stream);
  results.push_back(by_file);

  DerivedKeys keys;
  keys.cdc_speedup = results[0].mb_per_s / results[1].mb_per_s;
  keys.session_speedup = by_file.mb_per_s / by_stream.mb_per_s;
  keys.telemetry_overhead_pct = telemetry_overhead_pct;
  keys.profiler_overhead_pct = profiler_overhead_pct;
  keys.ops_overhead_pct = ops_overhead_pct;
  keys.sha1_batch_speedup = sha1_batch_speedup;
  keys.md5_batch_speedup = md5_batch_speedup;
  // The ROADMAP acceptance bar: chunk+fingerprint on the dynamic category
  // vs the recorded pre-PR-7 baseline (115.896 MB/s on this container).
  keys.fingerprint_speedup_vs_seed = fp_plain.mb_per_s / 115.896;
  std::printf("cdc speedup vs reference: %.2fx\n", keys.cdc_speedup);
  std::printf("file vs stream granularity: %.2fx\n", keys.session_speedup);
  std::printf("fingerprint speedup vs recorded seed: %.2fx\n",
              keys.fingerprint_speedup_vs_seed);

  write_json(config, results, keys);
  return 0;
}
