// Ablation: restore performance — the paper's chunk-locality claim
// (Section III.F: containers "group chunks likely to be retrieved
// together so that the data restoration performance will be reasonably
// good").
//
// Backs up the same workload with AA-Dedupe (container objects) and the
// chunk-level baseline (one object per chunk), then restores every file
// of the final session and compares download requests, downloaded bytes,
// and simulated WAN restore time.
#include <cstdio>

#include "backup/chunk_level.hpp"
#include "bench_common.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  const auto bench_config = bench::BenchConfig::from_env();
  dataset::DatasetConfig config = bench_config.dataset_config();
  dataset::DatasetGenerator generator(config);
  const auto snapshots = generator.sessions(2);

  std::printf("=== Ablation: full restore after 2 sessions (~%llu MiB each) "
              "===\n\n",
              static_cast<unsigned long long>(bench_config.session_mib));

  metrics::TableWriter table({"scheme", "restored", "GET requests",
                              "downloaded", "WAN restore (s)"});

  const auto run = [&](backup::BackupScheme& scheme) {
    for (const auto& s : snapshots) scheme.backup(s);
    scheme.target().reset_transfer_clock();
    const auto stats_before = scheme.target().store().stats();

    std::uint64_t restored_bytes = 0;
    for (const auto& file : snapshots.back().files) {
      restored_bytes += scheme.restore_file(file.path).size();
    }
    const auto stats_after = scheme.target().store().stats();
    table.add_row(
        {std::string(scheme.name()), format_bytes(restored_bytes),
         metrics::TableWriter::integer(stats_after.get_requests -
                                       stats_before.get_requests),
         format_bytes(stats_after.bytes_downloaded -
                      stats_before.bytes_downloaded),
         metrics::TableWriter::num(scheme.target().transfer_seconds(), 1)});
  };

  {
    cloud::CloudTarget target;
    backup::ChunkLevelScheme avamar(target);
    run(avamar);
  }
  {
    cloud::CloudTarget target;
    core::AaDedupeScheme aa(target);
    run(aa);
  }

  table.print();
  std::printf("\nshape checks: AA-Dedupe needs far fewer GET requests "
              "(container locality: one fetch serves many related chunks); "
              "it may download somewhat more raw bytes (whole containers), "
              "but the request-overhead savings dominate restore time on a "
              "high-latency WAN.\n");
  return 0;
}
