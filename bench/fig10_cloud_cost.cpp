// Figure 10: monthly cloud cost of the backed-up workload per scheme,
// using the paper's April-2011 Amazon S3 pricing ($0.14/GB-month storage,
// $0.10/GB upload, $0.01 per 1000 upload requests):
//   CC = DS/DR x (SP + TP) + OC x OP
//
// Paper shape: Avamar and SAM pay heavily for per-chunk upload requests;
// file-granularity JungleDisk/BackupPC are cheap on requests but store
// more; AA-Dedupe is cheapest overall (12-29% below the others) because
// 1 MB containers slash the request count at chunk-level space
// efficiency.
#include <cstdio>

#include "bench_common.hpp"
#include "cloud/cost_model.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  const auto config = bench::BenchConfig::from_env();
  std::printf("=== Fig. 10: monthly cloud backup cost (USD) ===\n");
  const auto runs = bench::run_suite(config, bench::scheme_names(true));
  std::printf("\n");

  const cloud::CostModel pricing;  // paper's S3 prices
  metrics::TableWriter table({"scheme", "stored", "uploaded", "requests",
                              "storage $", "transfer $", "request $",
                              "total $/month"});
  double aa_cost = 0, best_other = 1e300;
  for (const auto& run : runs) {
    const double storage = pricing.storage_cost(run.final_stored_bytes);
    const double transfer = pricing.transfer_cost(run.total_uploaded_bytes);
    const double requests = pricing.request_cost(run.total_upload_requests);
    const double total = storage + transfer + requests;
    if (run.name == "AA-Dedupe") {
      aa_cost = total;
    } else if (total < best_other) {
      best_other = total;
    }
    table.add_row({run.name, format_bytes(run.final_stored_bytes),
                   format_bytes(run.total_uploaded_bytes),
                   metrics::TableWriter::integer(run.total_upload_requests),
                   metrics::TableWriter::num(storage, 4),
                   metrics::TableWriter::num(transfer, 4),
                   metrics::TableWriter::num(requests, 4),
                   metrics::TableWriter::num(total, 4)});
  }
  table.print();

  std::printf("\nAA-Dedupe vs cheapest other scheme: %.1f%% cheaper "
              "(paper: 12-29%% cheaper than the others)\n",
              100.0 * (1.0 - aa_cost / best_other));
  std::printf("shape checks (paper): request cost dominates for "
              "Avamar/SAM; AA-Dedupe cheapest overall.\n");
  return 0;
}
