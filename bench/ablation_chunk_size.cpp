// Ablation: average chunk size vs dedup ratio and metadata cost (paper
// Section III.C: "the deduplication ratio is inversely proportional to
// the average chunk size... a smaller average chunk size translates to a
// higher processing cost").
//
// Sweeps SC fixed sizes and CDC expected sizes from 2 KB to 32 KB over a
// two-session mixed corpus and reports DR, chunk count (metadata burden)
// and chunking+hashing throughput.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "chunk/cdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "dataset/generator.hpp"
#include "hash/sha1.hpp"
#include "index/memory_index.hpp"
#include "metrics/params.hpp"
#include "metrics/table_writer.hpp"
#include "util/stopwatch.hpp"
#include "util/units.hpp"

namespace {

using namespace aadedupe;

struct SweepResult {
  double dr = 1.0;
  std::uint64_t chunks = 0;
  double mbps = 0.0;
};

SweepResult run(const chunk::Chunker& chunker,
                const std::vector<ByteBuffer>& files,
                std::uint64_t total_bytes) {
  index::MemoryChunkIndex index;
  std::uint64_t unique = 0, chunks = 0;
  StopWatch watch;
  for (const ByteBuffer& content : files) {
    for (const chunk::ChunkRef& ref : chunker.split(content)) {
      ++chunks;
      const auto digest = hash::Sha1::hash(
          ConstByteSpan{content}.subspan(ref.offset, ref.length));
      if (!index.lookup(digest)) {
        index.insert(digest, index::ChunkLocation{0, 0, ref.length});
        unique += ref.length;
      }
    }
  }
  SweepResult result;
  result.dr = metrics::dedupe_ratio(total_bytes, unique);
  result.chunks = chunks;
  result.mbps = static_cast<double>(total_bytes) / watch.seconds() / 1e6;
  return result;
}

}  // namespace

int main() {
  const auto bench_config = bench::BenchConfig::from_env();
  dataset::DatasetGenerator generator(bench_config.dataset_config());
  const auto snapshots = generator.sessions(2);

  std::vector<ByteBuffer> files;
  std::uint64_t total = 0;
  for (const auto& snapshot : snapshots) {
    for (const auto& entry : snapshot.files) {
      files.push_back(dataset::materialize(entry.content));
      total += files.back().size();
    }
  }
  std::printf("=== Ablation: chunk size sweep (2 sessions, %s, SHA-1 "
              "fingerprints) ===\n\n",
              format_bytes(total).c_str());

  metrics::TableWriter table({"chunking", "size", "DR", "chunks",
                              "throughput MB/s"});
  for (const std::size_t size : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    chunk::StaticChunker sc(size);
    const SweepResult r = run(sc, files, total);
    table.add_row({"SC", format_bytes(size),
                   metrics::TableWriter::num(r.dr, 3),
                   metrics::TableWriter::integer(r.chunks),
                   metrics::TableWriter::num(r.mbps, 1)});
  }
  for (const std::size_t size : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    chunk::CdcParams params;
    params.expected_size = size;
    params.min_size = std::max<std::size_t>(size / 4, 64);
    params.max_size = size * 2;
    chunk::CdcChunker cdc(params);
    const SweepResult r = run(cdc, files, total);
    table.add_row({"CDC", format_bytes(size),
                   metrics::TableWriter::num(r.dr, 3),
                   metrics::TableWriter::integer(r.chunks),
                   metrics::TableWriter::num(r.mbps, 1)});
  }
  table.print();
  std::printf("\nshape checks: DR falls and throughput rises as chunks "
              "grow; chunk count (index/metadata burden) scales inversely "
              "with chunk size — the tradeoff AA-Dedupe's per-category "
              "policy navigates.\n");
  return 0;
}
