// Figure 9: backup window size per session for the full-backup reference
// and the source-dedup schemes, with deduplication and transfer pipelined
// (BWS = max of the two stage times — the paper's
// BWS = DS x max(1/DT, 1/(DR x NT)) with overlap).
//
// Paper shape: Avamar performs worst — "even worse than the full backup
// method" — due to the overhead of fine-grained dedup; every other scheme
// is bound by the post-dedup transfer over the 500 KB/s uplink; AA-Dedupe
// is consistently best, shortening the window by ~10-32%.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/table_writer.hpp"

int main() {
  using namespace aadedupe;

  const auto config = bench::BenchConfig::from_env();
  std::printf("=== Fig. 9: backup window size per session (seconds) ===\n");
  const auto runs = bench::run_suite(config, bench::scheme_names(true));
  std::printf("\n");

  std::vector<std::string> headers{"session"};
  for (const auto& run : runs) headers.push_back(run.name);
  metrics::TableWriter table(std::move(headers));

  std::vector<double> totals(runs.size(), 0.0);
  for (std::uint32_t s = 0; s < config.sessions; ++s) {
    std::vector<std::string> row{std::to_string(s + 1)};
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const double w = runs[r].reports[s].backup_window_seconds();
      totals[r] += w;
      row.push_back(metrics::TableWriter::num(w, 1));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\ntotal windows (s): ");
  double aa_total = 0, best_other = 1e300;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    std::printf("%s %.1f  ", runs[r].name.c_str(), totals[r]);
    if (runs[r].name == "AA-Dedupe") {
      aa_total = totals[r];
    } else if (runs[r].name != "FullBackup" && totals[r] < best_other) {
      best_other = totals[r];
    }
  }
  std::printf("\nAA-Dedupe vs best other dedup scheme: %.1f%% shorter "
              "(paper: 10-32%% shorter)\n",
              100.0 * (1.0 - aa_total / best_other));
  std::printf("shape checks (paper): Avamar worst (>= FullBackup in its "
              "testbed); others transfer-bound; AA-Dedupe best.\n");
  return 0;
}
