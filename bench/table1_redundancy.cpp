// Table I: chunk-level data redundancy in typical PC applications.
//
// For each of the 12 file types, generate a per-type corpus, remove
// whole-file duplicates (file-level dedup), then measure the dedup ratio
// achieved by Static Chunking (8 KB) and Content-Defined Chunking (8 KB
// expected, 2-16 KB bounds) — the paper's SC DR and CDC DR columns.
//
// Paper values for comparison:
//   type   SC DR   CDC DR        type   SC DR   CDC DR
//   AVI    1.0002  1.0002        PDF    1.015   1.014
//   MP3    1.001   1.002         EXE    1.063   1.062
//   ISO    1.002   1.002         VMDK   1.286   1.168
//   DMG    1.004   1.004         DOC    1.231   1.234
//   RAR    1.008   1.008         TXT    1.232   1.259
//   JPG    1.009   1.009         PPT    1.275   1.3
#include <cstdio>
#include <set>
#include <string>
#include <unordered_set>

#include "bench_common.hpp"
#include "chunk/cdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "dataset/generator.hpp"
#include "hash/sha1.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

namespace {

using namespace aadedupe;

struct RedundancyResult {
  double sc_dr = 1.0;
  double cdc_dr = 1.0;
  std::uint64_t corpus_bytes = 0;
  std::uint64_t mean_file_size = 0;
};

/// Dedup ratio of `chunker` over the file-level-deduplicated corpus.
double chunk_dedupe_ratio(const chunk::Chunker& chunker,
                          const std::vector<ByteBuffer>& files) {
  std::unordered_set<std::string> seen;
  std::uint64_t total = 0, unique = 0;
  for (const ByteBuffer& content : files) {
    for (const chunk::ChunkRef& ref : chunker.split(content)) {
      const auto digest = hash::Sha1::hash(
          ConstByteSpan{content}.subspan(ref.offset, ref.length));
      total += ref.length;
      if (seen.insert(digest.hex()).second) unique += ref.length;
    }
  }
  return unique == 0 ? 1.0
                     : static_cast<double>(total) / static_cast<double>(unique);
}

RedundancyResult measure(dataset::DatasetGenerator& generator,
                         dataset::FileKind kind, std::uint64_t corpus_bytes) {
  const dataset::Snapshot corpus = generator.kind_corpus(kind, corpus_bytes);

  // File-level dedup first (Table I measures redundancy *after* it).
  std::vector<ByteBuffer> files;
  std::set<std::string> file_digests;
  std::uint64_t bytes = 0, count = 0;
  for (const auto& entry : corpus.files) {
    ByteBuffer content = dataset::materialize(entry.content);
    bytes += content.size();
    ++count;
    if (file_digests.insert(hash::Sha1::hash(content).hex()).second) {
      files.push_back(std::move(content));
    }
  }

  RedundancyResult result;
  result.corpus_bytes = bytes;
  result.mean_file_size = count == 0 ? 0 : bytes / count;
  chunk::StaticChunker sc;
  chunk::CdcChunker cdc;
  result.sc_dr = chunk_dedupe_ratio(sc, files);
  result.cdc_dr = chunk_dedupe_ratio(cdc, files);
  return result;
}

struct PaperRow {
  dataset::FileKind kind;
  double sc_dr;
  double cdc_dr;
};

constexpr PaperRow kPaperRows[] = {
    {dataset::FileKind::kAvi, 1.0002, 1.0002},
    {dataset::FileKind::kMp3, 1.001, 1.002},
    {dataset::FileKind::kIso, 1.002, 1.002},
    {dataset::FileKind::kDmg, 1.004, 1.004},
    {dataset::FileKind::kRar, 1.008, 1.008},
    {dataset::FileKind::kJpg, 1.009, 1.009},
    {dataset::FileKind::kPdf, 1.015, 1.014},
    {dataset::FileKind::kExe, 1.063, 1.062},
    {dataset::FileKind::kVmdk, 1.286, 1.168},
    {dataset::FileKind::kDoc, 1.231, 1.234},
    {dataset::FileKind::kTxt, 1.232, 1.259},
    {dataset::FileKind::kPpt, 1.275, 1.3},
};

}  // namespace

int main() {
  const auto bench_config = bench::BenchConfig::from_env();
  dataset::DatasetConfig config;
  config.seed = bench_config.seed;
  config.max_file_bytes = 8ull * 1024 * 1024;
  dataset::DatasetGenerator generator(config);

  const std::uint64_t corpus_bytes = bench_config.session_mib * 1024 * 1024;

  std::printf("=== Table I: chunk-level data redundancy per application "
              "(after file-level dedup) ===\n");
  std::printf("per-type corpus: ~%s; SC 8KB fixed; CDC 8KB expected "
              "(2-16KB, 48B window)\n\n",
              format_bytes(corpus_bytes).c_str());

  metrics::TableWriter table({"type", "corpus", "mean file", "SC DR",
                              "CDC DR", "paper SC", "paper CDC"});
  for (const PaperRow& row : kPaperRows) {
    const RedundancyResult r = measure(generator, row.kind, corpus_bytes);
    table.add_row({std::string(dataset::extension(row.kind)),
                   format_bytes(r.corpus_bytes),
                   format_bytes(r.mean_file_size),
                   metrics::TableWriter::num(r.sc_dr, 4),
                   metrics::TableWriter::num(r.cdc_dr, 4),
                   metrics::TableWriter::num(row.sc_dr, 4),
                   metrics::TableWriter::num(row.cdc_dr, 4)});
  }
  table.print();
  std::printf("\nshape checks: compressed types ~1.00x; SC >= CDC for "
              "PDF/EXE/VMDK; CDC >= SC for DOC/TXT/PPT.\n");
  return 0;
}
