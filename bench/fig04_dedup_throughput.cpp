// Figure 4: deduplication throughput of different implementations —
// the full dedup loop (chunk, fingerprint, index lookup/insert) for each
// combination of chunking method {WFC, SC, CDC} and hash function
// {Rabin96, MD5, SHA-1} over the same dataset.
//
// Paper shape: simpler chunking (WFC/SC) -> higher throughput (less
// metadata and no boundary scan); weaker hash (Rabin) -> higher
// throughput; CDC pays its Rabin boundary scan regardless of the
// fingerprint hash, so hash choice barely moves CDC.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "chunk/cdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "dataset/generator.hpp"
#include "hash/hash_kind.hpp"
#include "index/memory_index.hpp"
#include "metrics/table_writer.hpp"
#include "util/stopwatch.hpp"
#include "util/units.hpp"

namespace {

using namespace aadedupe;

double dedup_throughput_mbps(const chunk::Chunker& chunker,
                             hash::HashKind kind,
                             const std::vector<ByteBuffer>& files,
                             std::uint64_t total_bytes) {
  index::MemoryChunkIndex index;
  StopWatch watch;
  for (const ByteBuffer& content : files) {
    for (const chunk::ChunkRef& ref : chunker.split(content)) {
      const hash::Digest digest = hash::compute_digest(
          kind, ConstByteSpan{content}.subspan(ref.offset, ref.length));
      if (!index.lookup(digest)) {
        index.insert(digest,
                     index::ChunkLocation{
                         0, static_cast<std::uint32_t>(ref.offset & 0xffffffu),
                         ref.length});
      }
    }
  }
  return static_cast<double>(total_bytes) / watch.seconds() / 1e6;
}

}  // namespace

int main() {
  dataset::DatasetConfig config;
  config.seed = bench::BenchConfig::from_env().seed;
  config.session_bytes = 60ull * 1000 * 1000;
  dataset::DatasetGenerator generator(config);
  const dataset::Snapshot snapshot = generator.initial();

  std::vector<ByteBuffer> files;
  std::uint64_t total = 0;
  for (const auto& entry : snapshot.files) {
    files.push_back(dataset::materialize(entry.content));
    total += files.back().size();
  }

  std::printf("=== Fig. 4: dedup throughput, chunking x hash (%s dataset, "
              "MB/s) ===\n\n",
              format_bytes(total).c_str());

  const chunk::WholeFileChunker wfc;
  const chunk::StaticChunker sc;
  const chunk::CdcChunker cdc;
  const chunk::Chunker* chunkers[] = {&wfc, &sc, &cdc};

  metrics::TableWriter table({"chunking", "rabin96", "md5", "sha1"});
  for (const chunk::Chunker* chunker : chunkers) {
    std::vector<std::string> row{std::string(chunker->name())};
    for (const hash::HashKind kind :
         {hash::HashKind::kRabin96, hash::HashKind::kMd5,
          hash::HashKind::kSha1}) {
      row.push_back(metrics::TableWriter::num(
          dedup_throughput_mbps(*chunker, kind, files, total), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nshape checks (paper): WFC/SC rows above CDC; rabin >= md5 "
              ">= sha1 within WFC and SC; CDC roughly flat across hashes "
              "(boundary scan dominates).\n");
  return 0;
}
