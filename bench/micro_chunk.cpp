// Google-benchmark microbenchmarks for the three chunking engines.
#include <benchmark/benchmark.h>

#include "chunk/cdc_chunker.hpp"
#include "chunk/fastcdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "util/rng.hpp"

namespace {

using namespace aadedupe;

ByteBuffer make_data(std::size_t size) {
  ByteBuffer data(size);
  Xoshiro256 rng(size + 7);
  rng.fill(data);
  return data;
}

void BM_WholeFileChunker(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const chunk::WholeFileChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WholeFileChunker)->Arg(4 << 20);

void BM_StaticChunker(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const chunk::StaticChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StaticChunker)->Arg(4 << 20);

void BM_CdcChunker(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const chunk::CdcChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CdcChunker)->Arg(4 << 20);

void BM_FastCdcChunker(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const chunk::FastCdcChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FastCdcChunker)->Arg(4 << 20);

void BM_CdcChunkerZeros(benchmark::State& state) {
  // Zero-filled input: no boundary pattern matches, max-size cuts — the
  // VM-image sparse-region path.
  const ByteBuffer data(static_cast<std::size_t>(state.range(0)),
                        std::byte{0});
  const chunk::CdcChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CdcChunkerZeros)->Arg(4 << 20);

}  // namespace

BENCHMARK_MAIN();
