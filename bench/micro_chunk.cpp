// Google-benchmark microbenchmarks for the three chunking engines.
#include <benchmark/benchmark.h>

#include "chunk/cdc_chunker.hpp"
#include "chunk/fastcdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "core/aa_dedupe.hpp"
#include "util/rng.hpp"

namespace {

using namespace aadedupe;

ByteBuffer make_data(std::size_t size) {
  ByteBuffer data(size);
  Xoshiro256 rng(size + 7);
  rng.fill(data);
  return data;
}

void BM_WholeFileChunker(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const chunk::WholeFileChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WholeFileChunker)->Arg(4 << 20);

void BM_StaticChunker(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const chunk::StaticChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StaticChunker)->Arg(4 << 20);

void BM_CdcChunker(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const chunk::CdcChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CdcChunker)->Arg(4 << 20);

void BM_FastCdcChunker(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const chunk::FastCdcChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FastCdcChunker)->Arg(4 << 20);

void BM_CdcChunkerZeros(benchmark::State& state) {
  // Zero-filled input: no boundary pattern matches, max-size cuts — the
  // VM-image sparse-region path.
  const ByteBuffer data(static_cast<std::size_t>(state.range(0)),
                        std::byte{0});
  const chunk::CdcChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CdcChunkerZeros)->Arg(4 << 20);

// A snapshot whose bytes are dominated by a single application stream:
// ~90% of the data is unique .doc content (the CDC + SHA-1 category, the
// most expensive per byte) spread over several files, plus a few small
// streams of other kinds. Under stream-granularity parallelism the doc
// stream runs on one thread and bounds the session wall clock; the
// file-granularity front end spreads the doc files across the pool.
dataset::Snapshot make_skewed_snapshot() {
  dataset::Snapshot snapshot;
  auto add_file = [&](std::string path, dataset::FileKind kind,
                      std::uint64_t seed, std::uint32_t bytes) {
    dataset::FileEntry entry;
    entry.path = std::move(path);
    entry.kind = kind;
    entry.content.kind = kind;
    entry.content.segments.emplace_back(
        dataset::Segment::Type::kUnique, seed, bytes);
    snapshot.files.push_back(std::move(entry));
  };
  for (std::uint64_t i = 0; i < 8; ++i) {
    add_file("doc/skew" + std::to_string(i) + ".doc",
             dataset::FileKind::kDoc, 1000 + i, 3u << 20);
  }
  add_file("mp3/small0.mp3", dataset::FileKind::kMp3, 2000, 1u << 20);
  add_file("vm/small0.vmdk", dataset::FileKind::kVmdk, 2001, 1u << 20);
  add_file("txt/small0.txt", dataset::FileKind::kTxt, 2002, 512u << 10);
  return snapshot;
}

void BM_SkewedSessionGranularity(benchmark::State& state) {
  const dataset::Snapshot snapshot = make_skewed_snapshot();
  core::AaDedupeOptions options;
  options.granularity = state.range(0) == 0
                            ? core::ParallelGranularity::kStream
                            : core::ParallelGranularity::kFile;
  for (auto _ : state) {
    cloud::CloudTarget target;
    core::AaDedupeScheme scheme(target, options);
    benchmark::DoNotOptimize(scheme.backup(snapshot));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(snapshot.total_bytes()));
  state.SetLabel(state.range(0) == 0 ? "granularity=stream"
                                     : "granularity=file");
}
BENCHMARK(BM_SkewedSessionGranularity)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
