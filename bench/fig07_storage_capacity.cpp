// Figure 7: cumulative cloud storage capacity required by each backup
// scheme across the weekly backup sessions.
//
// Paper shape: the four source-dedup schemes beat incremental backup;
// fine-grained Avamar and semantic-aware SAM are the most space-
// efficient, and AA-Dedupe achieves similar or better space efficiency
// than both.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  const auto config = bench::BenchConfig::from_env();
  std::printf("=== Fig. 7: cumulative cloud storage capacity (MiB) ===\n");
  const auto runs = bench::run_suite(config, bench::scheme_names(true));
  std::printf("\n");

  std::vector<std::string> headers{"session"};
  for (const auto& run : runs) headers.push_back(run.name);
  metrics::TableWriter table(std::move(headers));

  for (std::uint32_t s = 0; s < config.sessions; ++s) {
    std::vector<std::string> row{std::to_string(s + 1)};
    for (const auto& run : runs) {
      row.push_back(metrics::TableWriter::num(
          static_cast<double>(run.reports[s].cumulative_stored_bytes) /
              (1024.0 * 1024.0),
          1));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nfinal occupancy: ");
  for (const auto& run : runs) {
    std::printf("%s %s  ", run.name.c_str(),
                format_bytes(run.final_stored_bytes).c_str());
  }
  std::printf("\nshape checks (paper): FullBackup >> JungleDisk > BackupPC "
              "> {SAM, Avamar, AA-Dedupe}; AA-Dedupe similar to or better "
              "than SAM/Avamar.\n");
  return 0;
}
