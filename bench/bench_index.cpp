// Log-structured index harness: drives the acceptance workload for the
// on-disk shard (ROADMAP item 2) and writes BENCH_index.json.
//
// Phases, in order, on one LogStructuredIndex with the entry cache
// capped at 64 MiB:
//   insert   : N synthetic fingerprints (1M full, 20k smoke) — WAL
//              appends, memtable seals, compactions.
//   hot      : repeated lookups over a small working set — must be
//              served by the entry cache, not segment reads.
//   cold     : absent-key lookups — the common "this chunk is new" case;
//              the bloom filter must absorb >= 95% with zero disk reads.
//   restart  : kill the process image (destroy without flush), tear the
//              WAL tail the way a power cut mid-write() would, reopen,
//              and scrub every fingerprint — recovery must replay the
//              log, drop the torn record, keep all acknowledged entries.
//
// The JSON carries machine-portable ratios for the report.py perf-gate
// (bloom_cold_filter_rate, hot_cache_hit_rate, cold_disk_reads_per_lookup,
// restart_recovery_ok) plus absolute rates for eyeballing.
//
// Usage: bench_index [--out <path>] [--smoke]
//   --out    output JSON path (default: BENCH_index.json in the CWD)
//   --smoke  tiny inputs (CI smoke label)
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hash/sha1.hpp"
#include "index/log_structured_index.hpp"
#include "telemetry/build_info.hpp"
#include "telemetry/json.hpp"
#include "telemetry/log.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace aadedupe;

struct Config {
  std::string out_path = "BENCH_index.json";
  bool smoke = false;

  std::size_t fingerprints() const { return smoke ? 20'000 : 1'000'000; }
  std::size_t hot_set() const { return smoke ? 2'000 : 50'000; }
  std::size_t hot_rounds() const { return smoke ? 5 : 10; }
  std::size_t cold_probes() const { return smoke ? 20'000 : 500'000; }
};

hash::Digest digest_of(const char* tag, std::size_t i) {
  std::string label = tag;
  label += std::to_string(i);
  return hash::Sha1::hash(as_bytes(label));
}

std::uint64_t max_rss_bytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is KiB on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

double rate(std::size_t ops, double seconds) {
  return seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else {
      AAD_LOG(&telemetry::stderr_logger(), kError, "session",
              "usage: %s [--out <path>] [--smoke]", argv[0]);
      return 2;
    }
  }

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("aad_bench_index_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  index::LogStructuredIndex::Options options;
  options.cache_capacity_bytes = 64ull << 20;  // the acceptance budget
  const std::size_t n = config.fingerprints();
  std::printf("log-structured index, %zu fingerprints, 64 MiB entry cache\n",
              n);

  double insert_s = 0.0, hot_s = 0.0, cold_s = 0.0;
  double hot_cache_hit_rate = 0.0, bloom_cold_filter_rate = 0.0;
  double cold_disk_reads_per_lookup = 0.0;
  std::size_t segment_count = 0;
  std::uint64_t rss_growth = 0, rss_budget = 0;
  std::uint64_t size_before_crash = 0;
  bool rss_bounded = false;
  const std::size_t hot = std::min(config.hot_set(), n);
  {
    index::LogStructuredIndex idx(dir, options);

    // -- insert ------------------------------------------------------------
    const std::uint64_t rss_before = max_rss_bytes();
    StopWatch insert_watch;
    for (std::size_t i = 0; i < n; ++i) {
      idx.insert(digest_of("fp-", i),
                 index::ChunkLocation{static_cast<std::uint64_t>(i), 0, 4096});
    }
    insert_s = insert_watch.seconds();
    segment_count = idx.segment_count();
    std::printf("  insert: %10.0f inserts/s  (%zu segments)\n",
                rate(n, insert_s), segment_count);

    // -- hot lookups -------------------------------------------------------
    const index::IndexStats before_hot = idx.stats();
    StopWatch hot_watch;
    for (std::size_t round = 0; round < config.hot_rounds(); ++round) {
      for (std::size_t i = 0; i < hot; ++i) {
        (void)idx.lookup(digest_of("fp-", i));
      }
    }
    hot_s = hot_watch.seconds();
    const index::IndexStats after_hot = idx.stats();
    const std::uint64_t hot_lookups = after_hot.lookups - before_hot.lookups;
    if (hot_lookups > 0) {
      hot_cache_hit_rate =
          static_cast<double>(after_hot.cache_hits - before_hot.cache_hits) /
          static_cast<double>(hot_lookups);
    }
    std::printf("  hot   : %10.0f lookups/s  cache hit rate %.3f\n",
                rate(hot * config.hot_rounds(), hot_s), hot_cache_hit_rate);

    // -- cold (absent-key) lookups ----------------------------------------
    const index::IndexStats before_cold = idx.stats();
    StopWatch cold_watch;
    for (std::size_t i = 0; i < config.cold_probes(); ++i) {
      (void)idx.lookup(digest_of("absent-", i));
    }
    cold_s = cold_watch.seconds();
    const index::IndexStats after_cold = idx.stats();
    const std::uint64_t cold_lookups =
        after_cold.lookups - before_cold.lookups;
    if (cold_lookups > 0) {
      bloom_cold_filter_rate =
          static_cast<double>(after_cold.filter_negatives -
                              before_cold.filter_negatives) /
          static_cast<double>(cold_lookups);
      cold_disk_reads_per_lookup =
          static_cast<double>(after_cold.disk_reads -
                              before_cold.disk_reads) /
          static_cast<double>(cold_lookups);
    }
    std::printf("  cold  : %10.0f lookups/s  bloom filter rate %.4f  "
                "disk reads/lookup %.4f\n",
                rate(config.cold_probes(), cold_s), bloom_cold_filter_rate,
                cold_disk_reads_per_lookup);

    // -- RSS bound ---------------------------------------------------------
    const std::uint64_t rss_after = max_rss_bytes();
    rss_growth = rss_after > rss_before ? rss_after - rss_before : 0;
    // Budget: the 64 MiB cache, the bloom filter + memtable + fences
    // (~48 B/key worst case), and allocator slack.
    rss_budget =
        (64ull << 20) + static_cast<std::uint64_t>(n) * 48 + (64ull << 20);
    rss_bounded = rss_growth <= rss_budget;
    std::printf("  rss   : +%.1f MiB (budget %.1f MiB) -> %s\n",
                static_cast<double>(rss_growth) / (1 << 20),
                static_cast<double>(rss_budget) / (1 << 20),
                rss_bounded ? "bounded" : "EXCEEDED");

    // Entries whose WAL records are acknowledged but not yet sealed — the
    // in-flight tail the "power cut" below lands in.
    for (std::size_t i = 0; i < 16; ++i) {
      idx.insert(digest_of("tail-", i),
                 index::ChunkLocation{n + i, 0, 4096});
    }
    size_before_crash = idx.size();
  }  // the "process" dies: no flush(), destructor only closes fds

  // Tear the final WAL record the way a mid-write() power cut would.
  const auto wal = dir / "wal.log";
  std::error_code ec;
  const auto wal_size = std::filesystem::file_size(wal, ec);
  if (!ec && wal_size > 5) {
    std::filesystem::resize_file(wal, wal_size - 5, ec);
  }

  // -- restart + scrub -----------------------------------------------------
  bool restart_recovery_ok = true;
  double restart_s = 0.0;
  std::uint64_t recovered_size = 0;
  {
    StopWatch restart_watch;
    index::LogStructuredIndex reopened(dir, options);
    restart_s = restart_watch.seconds();
    recovered_size = reopened.size();
    // Every acknowledged fingerprint outside the torn tail record must
    // resolve to its exact location.
    for (std::size_t i = 0; i < n; ++i) {
      const auto loc = reopened.lookup(digest_of("fp-", i));
      if (!loc || loc->container_id != i) {
        restart_recovery_ok = false;
        break;
      }
    }
    // The torn record costs at most one entry of the 16-entry tail.
    if (recovered_size + 1 < size_before_crash ||
        recovered_size > size_before_crash) {
      restart_recovery_ok = false;
    }
  }
  std::printf("  crash : reopened in %.3fs, %llu of %llu entries, scrub %s\n",
              restart_s, static_cast<unsigned long long>(recovered_size),
              static_cast<unsigned long long>(size_before_crash),
              restart_recovery_ok ? "OK" : "FAILED");

  telemetry::JsonValue doc;
  doc["benchmark"] = "log-structured index";
  doc["units"] = "ops/s, ratios in [0,1]";
  telemetry::BuildInfo::current().fill_json(doc["build"]);
  doc["smoke"] = config.smoke;
  doc["fingerprints"] = static_cast<std::uint64_t>(n);
  doc["cache_capacity_bytes"] = static_cast<std::uint64_t>(64ull << 20);
  telemetry::JsonValue& results = doc["results"].make_object();
  results["inserts_per_s"] = rate(n, insert_s);
  results["hot_lookups_per_s"] = rate(hot * config.hot_rounds(), hot_s);
  results["cold_lookups_per_s"] = rate(config.cold_probes(), cold_s);
  results["restart_seconds"] = restart_s;
  results["segment_count"] = static_cast<std::uint64_t>(segment_count);
  results["rss_growth_bytes"] = rss_growth;
  // Machine-portable gate keys (see tools/report.py GATE_KEYS).
  doc["bloom_cold_filter_rate"] = bloom_cold_filter_rate;
  doc["hot_cache_hit_rate"] = hot_cache_hit_rate;
  doc["cold_disk_reads_per_lookup"] = cold_disk_reads_per_lookup;
  doc["restart_recovery_ok"] = restart_recovery_ok;
  doc["rss_bounded"] = rss_bounded;

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session",
            "cannot open %s for writing", config.out_path.c_str());
    std::filesystem::remove_all(dir);
    return 1;
  }
  const std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());
  std::filesystem::remove_all(dir);

  // The acceptance bar from ROADMAP item 2 / ISSUE 6.
  if (bloom_cold_filter_rate < 0.95 || !restart_recovery_ok || !rss_bounded) {
    std::printf("acceptance check FAILED (bloom %.4f, recovery %d, rss %d)\n",
                bloom_cold_filter_rate, restart_recovery_ok ? 1 : 0,
                rss_bounded ? 1 : 0);
    return 1;
  }
  return 0;
}
