// Fleet observability harness (ROADMAP observability item): N simulated
// tenants, each an independent AA-Dedupe client with its OWN telemetry
// context, backing up its own weekly snapshot sequence. Every tenant's
// session metrics (BWS, DR, DE) land in tenant-labeled quantile sketches;
// the harness then merges all tenants' sketches — the exact, associative
// integer-bucket merge — into fleet-level distributions.
//
// Artifacts:
//   <report-dir>/tenant_NN.json   one run report per tenant
//   BENCH_fleet.json              fleet aggregate: per-tenant p50/p95/p99
//                                 rows for BWS/DR/DE, every merged sketch
//                                 family in full mergeable encoding, and
//                                 the machine-portable gate key
//                                 fleet_dr_p50 (dedup ratio is determined
//                                 by dataset + chunking, not the host)
//
// `report.py aggregate --check BENCH_fleet.json <report-dir>/*.json`
// re-merges the per-tenant reports in Python and must reproduce the fleet
// sketches exactly — that equality is the acceptance test for the merge
// (and runs as a ctest fixture chained behind the smoke run).
//
// Usage: bench_fleet_obs [--out <path>] [--report-dir <dir>] [--smoke]
//   --out         fleet JSON path (default: BENCH_fleet.json in the CWD)
//   --report-dir  per-tenant run-report directory (default: fleet_reports)
//   --smoke       8 tenants instead of 32 (CI smoke label)
// Scale knobs AAD_BENCH_MIB / AAD_BENCH_SESSIONS / AAD_BENCH_SEED apply
// per tenant (each tenant derives its own dataset seed from the base).
//
// Live ops plane: with AAD_OPS_PORT set (see bench::Observability) the
// harness serves /metrics, /varz, /healthz, /tracez, and /flightz while
// the fleet runs. Tenant contexts share the harness clock and report
// their spans and session SLO outcomes into the harness HealthMonitor,
// and the /metrics + /varz endpoints follow the tenant currently
// running, so a scrape mid-run sees the live fleet, not a stale file.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cloud/cloud_target.hpp"
#include "core/aa_dedupe.hpp"
#include "telemetry/build_info.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/json.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/ops_server.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/sketch.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace aadedupe;

struct Config {
  std::string out_path = "BENCH_fleet.json";
  std::string report_dir = "fleet_reports";
  bool smoke = false;

  std::size_t tenants() const { return smoke ? 8 : 32; }
};

std::string tenant_name(std::size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "t%02zu", i);
  return buf;
}

/// The three session-level families the fleet table reports (the paper's
/// derived metrics, in sketch form).
constexpr const char* kSessionFamilies[] = {
    "session.backup_window_s",
    "session.dedupe_ratio",
    "session.bytes_saved_per_s",
};

void fill_quantile_row(telemetry::JsonValue& out,
                       const telemetry::QuantileSketch& sketch) {
  out.make_object();
  out["count"] = sketch.count();
  out["p50"] = sketch.quantile(0.50);
  out["p95"] = sketch.quantile(0.95);
  out["p99"] = sketch.quantile(0.99);
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      config.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report-dir") == 0 && i + 1 < argc) {
      config.report_dir = argv[++i];
    } else {
      AAD_LOG(&telemetry::stderr_logger(), kError, "session",
              "usage: %s [--out <path>] [--report-dir <dir>] [--smoke]",
              argv[0]);
      return 2;
    }
  }

  const bench::BenchConfig base = bench::BenchConfig::from_env();
  const std::size_t tenants = config.tenants();
  std::filesystem::create_directories(config.report_dir);

  // Harness-level ops plane (AAD_OPS_PORT / AAD_SLO_* knobs). The fleet
  // runs tenants through per-tenant telemetry contexts, so the harness
  // serves live views by (a) pointing /metrics and /varz at the tenant
  // currently running — guarded by a mutex because the listener thread
  // reads the pointer while the main thread retires each tenant context —
  // and (b) attaching every tenant context to the harness HealthMonitor
  // on the harness clock, so /healthz and /tracez cover the whole fleet
  // on one time axis.
  bench::Observability obs;
  std::mutex live_mutex;
  telemetry::Telemetry* live_telemetry = nullptr;
  if (telemetry::OpsServer* ops = obs.ops_server()) {
    ops->set_handler("/metrics", [&]() {
      telemetry::OpsResponse response;
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      std::lock_guard<std::mutex> lock(live_mutex);
      telemetry::Telemetry& source =
          live_telemetry != nullptr ? *live_telemetry : obs.telemetry();
      response.body = telemetry::to_prometheus_text(source.metrics.snapshot());
      return response;
    });
    ops->set_handler("/varz", [&]() {
      telemetry::OpsResponse response;
      response.content_type = "application/json; charset=utf-8";
      telemetry::RunReport report;
      std::lock_guard<std::mutex> lock(live_mutex);
      report.add_telemetry(live_telemetry != nullptr ? *live_telemetry
                                                     : obs.telemetry());
      response.body = report.to_json();
      return response;
    });
  }

  std::printf("# fleet: %zu tenants x %u sessions x ~%llu MiB, base seed "
              "%llu\n",
              tenants, base.sessions,
              static_cast<unsigned long long>(base.session_mib),
              static_cast<unsigned long long>(base.seed));

  // Fleet-level merge target, keyed by sketch base name. Tenants carry
  // distinct label sets (tenant=..., app=..., stage=...) but identical
  // base families, so merging by base name folds the whole fleet into one
  // distribution per family — the same reduction report.py `aggregate`
  // performs over the per-tenant JSON files.
  std::map<std::string, telemetry::QuantileSketch> fleet;
  telemetry::JsonValue per_tenant;
  per_tenant.make_object();

  for (std::size_t t = 0; t < tenants; ++t) {
    const std::string name = tenant_name(t);
    // Each tenant is a distinct client: own telemetry context, own cloud
    // target, own dataset (seed derived from the base so tenants differ
    // but the whole fleet is reproducible).
    bench::BenchConfig tenant_config = base;
    tenant_config.seed = base.seed + 1000003ull * (t + 1);

    // On the harness clock so span idle times and SLO windows in the
    // shared HealthMonitor compare correctly across tenants.
    telemetry::Telemetry telemetry(
        [&obs]() { return obs.telemetry().trace.now(); });
    if (telemetry::HealthMonitor* health = obs.health()) {
      telemetry.health = health;
      telemetry.trace.set_health_monitor(health);
    }
    {
      std::lock_guard<std::mutex> lock(live_mutex);
      live_telemetry = &telemetry;
    }
    cloud::CloudTarget target;
    target.attach_telemetry(&telemetry);
    core::AaDedupeOptions options;
    options.telemetry = &telemetry;
    options.tenant = name;
    core::AaDedupeScheme scheme(target, options);

    std::vector<backup::SessionReport> reports;
    for (const auto& snapshot : bench::suite_snapshots(tenant_config)) {
      reports.push_back(scheme.backup(snapshot));
    }

    // Per-tenant run report: the artifact report.py `aggregate` consumes.
    telemetry::RunReport report;
    telemetry::JsonValue& workload = report.section("workload");
    workload["tenant"] = name;
    workload["session_mib"] = tenant_config.session_mib;
    workload["sessions"] = tenant_config.sessions;
    workload["seed"] = tenant_config.seed;
    report.add_telemetry(telemetry);
    scheme.fill_run_report(report);
    target.fill_run_report(report);
    if (!reports.empty()) backup::fill_run_report(reports.back(), report);
    const std::string report_path =
        (std::filesystem::path(config.report_dir) / ("tenant_" + name.substr(1) + ".json"))
            .string();
    report.write_file(report_path);

    // Fold this tenant's sketches into the fleet and record its session
    // quantile rows.
    const telemetry::MetricsSnapshot snapshot = telemetry.metrics.snapshot();
    telemetry::JsonValue& row = per_tenant[name].make_object();
    for (const auto& entry : snapshot.entries) {
      if (entry.kind != telemetry::MetricKind::kSketch) continue;
      const auto it = fleet
                          .try_emplace(entry.base_name,
                                       entry.sketch.relative_accuracy())
                          .first;
      it->second.merge(entry.sketch);
      for (const char* family : kSessionFamilies) {
        if (entry.base_name == family) {
          fill_quantile_row(row[family], entry.sketch);
        }
      }
    }
    const double dr = reports.empty() ? 0.0 : reports.back().dedupe_ratio();
    std::printf("# tenant %s: %zu sessions, last DR %.2f -> %s\n",
                name.c_str(), reports.size(), dr, report_path.c_str());

    // Retire this tenant from the live view BEFORE its context is
    // destroyed — the listener thread must never snapshot a dead
    // registry, and the tracer must stop feeding the fleet monitor.
    {
      std::lock_guard<std::mutex> lock(live_mutex);
      live_telemetry = nullptr;
    }
    telemetry.trace.set_health_monitor(nullptr);
  }

  telemetry::JsonValue doc;
  doc["benchmark"] = "fleet observability";
  doc["units"] = "seconds, ratios, bytes/s";
  telemetry::BuildInfo::current().fill_json(doc["build"]);
  doc["smoke"] = config.smoke;
  doc["tenants"] = static_cast<std::uint64_t>(tenants);
  doc["sessions"] = base.sessions;
  doc["session_mib"] = base.session_mib;
  doc["seed"] = base.seed;
  doc["per_tenant"] = std::move(per_tenant);
  telemetry::JsonValue& merged = doc["fleet"].make_object();
  for (const auto& [family, sketch] : fleet) {
    sketch.fill_json(merged[family]);
  }

  std::printf("# fleet quantiles (over %zu tenants):\n", tenants);
  std::printf("#   %-26s %8s %10s %10s %10s\n", "family", "count", "p50",
              "p95", "p99");
  for (const auto& [family, sketch] : fleet) {
    std::printf("#   %-26s %8llu %10.4g %10.4g %10.4g\n", family.c_str(),
                static_cast<unsigned long long>(sketch.count()),
                sketch.quantile(0.50), sketch.quantile(0.95),
                sketch.quantile(0.99));
  }

  // Machine-portable gate key: the fleet's median dedup ratio is a pure
  // function of the datasets and the chunking pipeline (no wall clock in
  // it), so it gates byte-exact behaviour across hosts.
  const auto dr_it = fleet.find("session.dedupe_ratio");
  const bool have_dr = dr_it != fleet.end() && dr_it->second.count() > 0;
  doc["fleet_dr_p50"] = have_dr ? dr_it->second.quantile(0.50) : 0.0;
  doc["fleet_sessions_observed"] =
      have_dr ? dr_it->second.count() : std::uint64_t{0};

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session",
            "cannot open %s for writing", config.out_path.c_str());
    return 1;
  }
  const std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  // Acceptance floor: every tenant must have contributed one DR
  // observation per session — a fleet table with silent holes is worse
  // than a failing bench.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(tenants) * base.sessions;
  if (!have_dr || dr_it->second.count() != expected) {
    std::printf("fleet acceptance FAILED: %llu DR observations, expected "
                "%llu\n",
                static_cast<unsigned long long>(
                    have_dr ? dr_it->second.count() : 0),
                static_cast<unsigned long long>(expected));
    return 1;
  }
  return 0;
}
