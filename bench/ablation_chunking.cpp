// Ablation: AA-Dedupe's per-category chunking policy vs uniform policies.
//
// Runs the same mixed-application corpus through four policies —
// all-WFC, all-SC, all-CDC (each with its natural hash), and the paper's
// per-category policy (WFC+Rabin / SC+MD5 / CDC+SHA-1) — and reports
// dedup ratio, throughput and the paper's efficiency metric DE. The
// application-aware policy should dominate on DE: close to all-CDC's
// ratio at close to all-WFC's speed.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "chunk/cdc_chunker.hpp"
#include "chunk/fastcdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "core/policy.hpp"
#include "dataset/generator.hpp"
#include "hash/hash_kind.hpp"
#include "index/memory_index.hpp"
#include "metrics/params.hpp"
#include "metrics/table_writer.hpp"
#include "util/stopwatch.hpp"
#include "util/units.hpp"

namespace {

using namespace aadedupe;

struct CorpusFile {
  dataset::FileKind kind;
  ByteBuffer content;
};

struct PolicyResult {
  double dedupe_ratio = 1.0;
  double throughput_mbps = 0.0;

  double de_mbps() const {
    return metrics::bytes_saved_per_second(dedupe_ratio,
                                           throughput_mbps * 1e6) /
           1e6;
  }
};

/// Runs the dedup loop with a fixed (chunker, hash) per file decided by
/// `select`, against one index, and measures DR and throughput.
template <typename Select>
PolicyResult run_policy(const std::vector<CorpusFile>& files,
                        std::uint64_t total_bytes, Select&& select) {
  index::MemoryChunkIndex index;
  std::uint64_t unique_bytes = 0;
  StopWatch watch;
  for (const CorpusFile& file : files) {
    const auto [chunker, kind] = select(file.kind);
    for (const chunk::ChunkRef& ref : chunker->split(file.content)) {
      const hash::Digest digest = hash::compute_digest(
          kind, ConstByteSpan{file.content}.subspan(ref.offset, ref.length));
      if (!index.lookup(digest)) {
        index.insert(digest, index::ChunkLocation{0, 0, ref.length});
        unique_bytes += ref.length;
      }
    }
  }
  const double seconds = watch.seconds();
  PolicyResult result;
  result.dedupe_ratio = metrics::dedupe_ratio(total_bytes, unique_bytes);
  result.throughput_mbps = static_cast<double>(total_bytes) / seconds / 1e6;
  return result;
}

}  // namespace

int main() {
  const auto bench_config = bench::BenchConfig::from_env();
  dataset::DatasetConfig config = bench_config.dataset_config();
  config.session_bytes = std::max<std::uint64_t>(
      config.session_bytes, 48ull * 1024 * 1024);
  dataset::DatasetGenerator generator(config);

  // Two consecutive weekly snapshots: cross-session redundancy included,
  // which is what a backup dedup policy actually faces.
  const auto snapshots = generator.sessions(2);
  std::vector<CorpusFile> files;
  std::uint64_t total = 0;
  for (const auto& snapshot : snapshots) {
    for (const auto& entry : snapshot.files) {
      files.push_back(CorpusFile{entry.kind,
                                 dataset::materialize(entry.content)});
      total += files.back().content.size();
    }
  }
  std::printf("=== Ablation: chunking policy (2 weekly sessions, %s) ===\n\n",
              format_bytes(total).c_str());

  const chunk::WholeFileChunker wfc;
  const chunk::StaticChunker sc;
  const chunk::CdcChunker cdc;
  const chunk::FastCdcChunker fastcdc;
  const core::DedupPolicy aa_policy;

  using Pick = std::pair<const chunk::Chunker*, hash::HashKind>;
  const auto all_wfc = [&](dataset::FileKind) {
    return Pick{&wfc, hash::HashKind::kRabin96};
  };
  const auto all_sc = [&](dataset::FileKind) {
    return Pick{&sc, hash::HashKind::kMd5};
  };
  const auto all_cdc = [&](dataset::FileKind) {
    return Pick{&cdc, hash::HashKind::kSha1};
  };
  const auto all_fastcdc = [&](dataset::FileKind) {
    return Pick{&fastcdc, hash::HashKind::kSha1};
  };
  const auto app_aware = [&](dataset::FileKind kind) {
    const auto p = aa_policy.for_kind(kind);
    return Pick{p.chunker, p.hash_kind};
  };

  metrics::TableWriter table(
      {"policy", "DR", "throughput MB/s", "DE MB/s"});
  const std::pair<const char*, PolicyResult> rows[] = {
      {"all-WFC + rabin96", run_policy(files, total, all_wfc)},
      {"all-SC  + md5", run_policy(files, total, all_sc)},
      {"all-CDC + sha1", run_policy(files, total, all_cdc)},
      {"all-FastCDC + sha1", run_policy(files, total, all_fastcdc)},
      {"app-aware (paper)", run_policy(files, total, app_aware)},
  };
  for (const auto& [name, r] : rows) {
    table.add_row({name, metrics::TableWriter::num(r.dedupe_ratio, 3),
                   metrics::TableWriter::num(r.throughput_mbps, 1),
                   metrics::TableWriter::num(r.de_mbps(), 1)});
  }
  table.print();
  std::printf(
      "\nshape checks: app-aware reaches the best (all-CDC-level) DR at a "
      "throughput ~4-5x all-CDC's — the paper's efficiency tradeoff. "
      "all-WFC posts the highest raw DE (it is extremely fast) but "
      "sacrifices dedup effectiveness (lowest DR), which the full-system "
      "figures (cloud cost, backup window, storage) charge back; all-SC "
      "loses ratio on edited files, all-CDC pays the boundary-scan tax on "
      "data that never needed it.\n");
  return 0;
}
