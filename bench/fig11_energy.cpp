// Figure 11: power/energy consumption of the four source-dedup schemes
// during the deduplication process, per backup session.
//
// The paper measures whole-PC power with an electricity usage monitor; we
// use the calibrated two-term model (idle watts over the backup window +
// active watts per measured CPU-second; see metrics/energy.hpp).
//
// Paper shape: Avamar and SAM pay for their heavy compute — AA-Dedupe
// consumes ~1/4 the power of Avamar and ~1/3 of SAM thanks to adaptive
// weak hashing.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/energy.hpp"
#include "metrics/table_writer.hpp"

int main() {
  using namespace aadedupe;

  const auto config = bench::BenchConfig::from_env();
  std::printf("=== Fig. 11: energy per backup session (J, model: %.0fW idle "
              "+ %.0fW active) ===\n",
              metrics::EnergyModel{}.idle_watts,
              metrics::EnergyModel{}.active_watts);
  // Fig. 11 covers the four source-dedup schemes (no full/incremental).
  const std::vector<std::string> names{"BackupPC", "Avamar", "SAM",
                                       "AA-Dedupe"};
  const auto runs = bench::run_suite(config, names);
  std::printf("\n");

  const metrics::EnergyModel model;
  std::vector<std::string> headers{"session"};
  for (const auto& run : runs) headers.push_back(run.name);
  metrics::TableWriter table(std::move(headers));

  std::vector<double> energy_totals(runs.size(), 0.0);
  for (std::uint32_t s = 0; s < config.sessions; ++s) {
    std::vector<std::string> row{std::to_string(s + 1)};
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const double joules = runs[r].reports[s].energy_joules(model);
      energy_totals[r] += joules;
      row.push_back(metrics::TableWriter::num(joules, 0));
    }
    table.add_row(std::move(row));
  }
  table.print();

  double aa_energy = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (runs[r].name == "AA-Dedupe") aa_energy = energy_totals[r];
  }
  std::printf("\ntotal energy multiples vs AA-Dedupe: ");
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (runs[r].name == "AA-Dedupe") continue;
    std::printf("%s %.1fx  ", runs[r].name.c_str(),
                energy_totals[r] / aa_energy);
  }
  std::printf("\nshape checks (paper): Avamar ~4x and SAM ~3x AA-Dedupe's "
              "power consumption.\n");
  return 0;
}
