// Ablation: sensitivity of the headline result to the workload's
// sub-file-redundancy level.
//
// The synthetic generator is calibrated to Table I, but a reproduction's
// conclusions should not hinge on that exact calibration. This bench
// scales every type's pool share by 0.5x / 1x / 2x and re-measures the
// Fig. 8 DE ratios: AA-Dedupe's lead must survive across the range (at
// low redundancy every scheme saves less, at high redundancy the gap in
// *throughput* still separates them).
#include <cstdio>

#include "backup/chunk_level.hpp"
#include "backup/file_level.hpp"
#include "backup/sam.hpp"
#include "bench_common.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "metrics/table_writer.hpp"

int main() {
  using namespace aadedupe;

  const auto bench_config = bench::BenchConfig::from_env();
  std::printf("=== Ablation: redundancy-level sensitivity (4 sessions, "
              "~%llu MiB each) ===\n\n",
              static_cast<unsigned long long>(bench_config.session_mib));

  metrics::TableWriter table({"pool-share scale", "AA DR", "AA DE MB/s",
                              "DE x BackupPC", "DE x SAM", "DE x Avamar"});
  for (const double scale : {0.5, 1.0, 2.0}) {
    dataset::DatasetConfig config = bench_config.dataset_config();
    config.redundancy_scale = scale;

    struct Result {
      double de = 0;
      double dr = 0;
    };
    const auto run = [&](auto make_scheme) {
      dataset::DatasetGenerator generator(config);
      const auto sessions = generator.sessions(4);
      cloud::CloudTarget target;
      auto scheme = make_scheme(target);
      Result result;
      for (const auto& snapshot : sessions) {
        const auto report = scheme->backup(snapshot);
        result.de += report.bytes_saved_per_second() / 4.0;
        result.dr = report.dedupe_ratio();
      }
      return result;
    };

    const Result aa = run([](cloud::CloudTarget& t) {
      return std::make_unique<core::AaDedupeScheme>(t);
    });
    const Result bpc = run([](cloud::CloudTarget& t) {
      return std::make_unique<backup::FileLevelScheme>(t);
    });
    const Result sam = run([](cloud::CloudTarget& t) {
      return std::make_unique<backup::SamScheme>(t);
    });
    const Result avamar = run([](cloud::CloudTarget& t) {
      return std::make_unique<backup::ChunkLevelScheme>(t);
    });

    table.add_row({metrics::TableWriter::num(scale, 1) + "x",
                   metrics::TableWriter::num(aa.dr, 2),
                   metrics::TableWriter::num(aa.de / 1e6, 1),
                   metrics::TableWriter::num(aa.de / bpc.de, 1) + "x",
                   metrics::TableWriter::num(aa.de / sam.de, 1) + "x",
                   metrics::TableWriter::num(aa.de / avamar.de, 1) + "x"});
    std::printf("# measured scale %.1fx\n", scale);
  }
  std::printf("\n");
  table.print();
  std::printf("\nshape checks: AA-Dedupe's DE lead (>1x in every column) "
              "holds whether the workload has half or double the "
              "calibrated sub-file redundancy — the advantage comes from "
              "the policy (cheap hashes where redundancy is absent, small "
              "indices), not from one lucky redundancy level.\n");
  return 0;
}
