// Ablation: fault tolerance — what an unreliable WAN costs.
//
// Runs the same AA-Dedupe backup through cloud targets with increasing
// transient-failure rates and reports how the retry/backoff stack turns
// link failures into backup-window time instead of data loss: injected
// faults, retries, simulated backoff seconds, WAN transfer time, and a
// byte-exact restore check of the final session.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  const auto bench_config = bench::BenchConfig::from_env();
  dataset::DatasetConfig config = bench_config.dataset_config();
  dataset::DatasetGenerator generator(config);
  const auto snapshots = generator.sessions(3);

  std::printf("=== Ablation: AA-Dedupe backup over an unreliable WAN "
              "(3 sessions, ~%llu MiB each) ===\n\n",
              static_cast<unsigned long long>(bench_config.session_mib));

  metrics::TableWriter table({"fault rate", "injected", "retries",
                              "backoff (s)", "exhausted", "WAN time (s)",
                              "restore"});

  for (const double fault_p : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    cloud::CloudTarget target;
    if (fault_p > 0.0) {
      target.inject_faults(cloud::FaultProfile::transient(fault_p),
                           bench_config.seed);
    }
    core::AaDedupeScheme scheme(target);

    double wan_seconds = 0.0;
    for (const auto& snapshot : snapshots) {
      wan_seconds += scheme.backup(snapshot).transfer_seconds;
    }

    // Byte-exact restore of the final session through the same bad link.
    bool intact = true;
    for (const auto& file : snapshots.back().files) {
      if (scheme.restore_file(file.path) !=
          dataset::materialize(file.content)) {
        intact = false;
        break;
      }
    }
    intact = intact && scheme.pending_uploads().empty();

    const auto& retrier = target.retrier();
    char rate[16];
    std::snprintf(rate, sizeof rate, "%.0f%%", fault_p * 100.0);
    table.add_row({rate,
                   metrics::TableWriter::integer(target.injected_fault_total()),
                   metrics::TableWriter::integer(retrier.retries()),
                   metrics::TableWriter::num(retrier.backoff_seconds(), 1),
                   metrics::TableWriter::integer(retrier.exhausted()),
                   metrics::TableWriter::num(wan_seconds, 1),
                   intact ? "byte-exact" : "DAMAGED"});
  }

  table.print();
  std::printf("\nshape checks: every row restores byte-exact; injected "
              "faults and retries grow with the fault rate; backoff and "
              "failed-attempt time widen the WAN column while the dedup "
              "work itself is unchanged. Exhausted should stay 0 until "
              "the fault rate overwhelms the default 4-attempt budget.\n");
  return 0;
}
