// Google-benchmark microbenchmarks for the index implementations.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "hash/sha1.hpp"
#include "index/log_structured_index.hpp"
#include "index/memory_index.hpp"
#include "index/partitioned_index.hpp"
#include "index/persistent_index.hpp"
#include "util/bytes.hpp"

namespace {

using namespace aadedupe;

std::vector<hash::Digest> make_digests(std::size_t count) {
  std::vector<hash::Digest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // += instead of operator+: the rvalue-concat path trips GCC 12's
    // bogus -Wrestrict at -O3 (PR 105329).
    std::string label = "d";
    label += std::to_string(i);
    out.push_back(hash::Sha1::hash(as_bytes(label)));
  }
  return out;
}

void BM_MemoryIndexLookupHit(benchmark::State& state) {
  const auto digests = make_digests(static_cast<std::size_t>(state.range(0)));
  index::MemoryChunkIndex idx;
  for (const auto& d : digests) idx.insert(d, {});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.lookup(digests[i++ % digests.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryIndexLookupHit)->Arg(1 << 14)->Arg(1 << 18);

void BM_MemoryIndexLookupMiss(benchmark::State& state) {
  const auto digests = make_digests(1 << 14);
  const auto probes = make_digests(1 << 15);  // second half absent
  index::MemoryChunkIndex idx;
  for (const auto& d : digests) idx.insert(d, {});
  std::size_t i = probes.size() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.lookup(probes[i]));
    if (++i == probes.size()) i = probes.size() / 2;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryIndexLookupMiss);

void BM_PartitionedShardLookup(benchmark::State& state) {
  const auto digests = make_digests(1 << 14);
  index::PartitionedIndex idx;
  index::ChunkIndex& shard = idx.shard("doc");
  for (const auto& d : digests) shard.insert(d, {});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard.lookup(digests[i++ % digests.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionedShardLookup);

void BM_PersistentIndexLookup(benchmark::State& state) {
  const auto path = std::filesystem::temp_directory_path() /
                    "aad_bench_persistent_index.bin";
  std::filesystem::remove(path);
  {
    index::PersistentChunkIndex::Options options;
    options.cache_entries = static_cast<std::size_t>(state.range(0));
    index::PersistentChunkIndex idx(path.string(), options);
    const auto digests = make_digests(1 << 12);
    for (const auto& d : digests) idx.insert(d, {});
    std::size_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(idx.lookup(digests[i++ % digests.size()]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_PersistentIndexLookup)
    ->Arg(0)        // no RAM cache: every lookup reads the file
    ->Arg(1 << 13)  // cache covers the working set
    ->Unit(benchmark::kMicrosecond);

void BM_LogStructuredLookupHit(benchmark::State& state) {
  // Working set fits the entry cache: steady-state lookups are RAM-speed
  // despite the index living on disk.
  const auto dir = std::filesystem::temp_directory_path() /
                   "aad_bench_lsi_hit";
  std::filesystem::remove_all(dir);
  {
    index::LogStructuredIndex::Options options;
    options.memtable_limit = 4096;  // force sealed segments
    index::LogStructuredIndex idx(dir, options);
    const auto digests =
        make_digests(static_cast<std::size_t>(state.range(0)));
    for (const auto& d : digests) idx.insert(d, {});
    std::size_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(idx.lookup(digests[i++ % digests.size()]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LogStructuredLookupHit)->Arg(1 << 14)->Arg(1 << 17);

void BM_LogStructuredLookupMiss(benchmark::State& state) {
  // Absent keys: the bloom filter answers nearly all of them with zero
  // disk reads — this is the "new chunk" common case of a backup stream.
  const auto dir = std::filesystem::temp_directory_path() /
                   "aad_bench_lsi_miss";
  std::filesystem::remove_all(dir);
  {
    index::LogStructuredIndex::Options options;
    options.memtable_limit = 4096;
    index::LogStructuredIndex idx(dir, options);
    const auto digests = make_digests(1 << 14);
    const auto probes = make_digests(1 << 15);  // second half absent
    for (const auto& d : digests) idx.insert(d, {});
    std::size_t i = probes.size() / 2;
    for (auto _ : state) {
      benchmark::DoNotOptimize(idx.lookup(probes[i]));
      if (++i == probes.size()) i = probes.size() / 2;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    const auto stats = idx.stats();
    state.counters["filter_negative_rate"] =
        stats.filter_probes > 0
            ? static_cast<double>(stats.filter_negatives) /
                  static_cast<double>(stats.filter_probes)
            : 0.0;
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LogStructuredLookupMiss);

void BM_LogStructuredInsert(benchmark::State& state) {
  // WAL append + memtable insert, amortizing periodic seals/compactions.
  const auto dir = std::filesystem::temp_directory_path() /
                   "aad_bench_lsi_insert";
  std::filesystem::remove_all(dir);
  {
    index::LogStructuredIndex::Options options;
    options.memtable_limit = 4096;
    index::LogStructuredIndex idx(dir, options);
    std::size_t i = 0;
    for (auto _ : state) {
      std::string label = "ins";
      label += std::to_string(i);
      benchmark::DoNotOptimize(
          idx.insert(hash::Sha1::hash(as_bytes(label)),
                     index::ChunkLocation{i, 0, 4096}));
      ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LogStructuredInsert)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
