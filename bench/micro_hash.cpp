// Google-benchmark microbenchmarks for the three fingerprint functions
// and the Rabin rolling window (CDC's inner loop).
#include <benchmark/benchmark.h>

#include "hash/md5.hpp"
#include "hash/rabin.hpp"
#include "hash/sha1.hpp"
#include "util/rng.hpp"

namespace {

using namespace aadedupe;

ByteBuffer make_data(std::size_t size) {
  ByteBuffer data(size);
  Xoshiro256 rng(size);
  rng.fill(data);
  return data;
}

void BM_Md5(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Md5::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(8 << 10)->Arg(1 << 20);

void BM_Sha1(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(8 << 10)->Arg(1 << 20);

void BM_Rabin96(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Rabin96::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Rabin96)->Arg(8 << 10)->Arg(1 << 20);

// Streaming paths: the same data fed through update() in pieces, the way
// the per-category hash sees chunk bytes arriving from the chunker. The
// second range argument is the update granularity.
template <typename Hash>
void stream_hash(benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  const auto piece = static_cast<std::size_t>(state.range(1));
  const ByteBuffer data = make_data(total);
  for (auto _ : state) {
    Hash h;
    std::size_t i = 0;
    while (i < data.size()) {
      const std::size_t n = std::min(piece, data.size() - i);
      h.update(ConstByteSpan{data.data() + i, n});
      i += n;
    }
    benchmark::DoNotOptimize(h.finish());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Md5Streaming(benchmark::State& state) {
  stream_hash<hash::Md5>(state);
}
BENCHMARK(BM_Md5Streaming)->Args({1 << 20, 4 << 10})->Args({1 << 20, 64});

void BM_Sha1Streaming(benchmark::State& state) {
  stream_hash<hash::Sha1>(state);
}
BENCHMARK(BM_Sha1Streaming)->Args({1 << 20, 4 << 10})->Args({1 << 20, 64});

void BM_Rabin96Streaming(benchmark::State& state) {
  stream_hash<hash::Rabin96>(state);
}
BENCHMARK(BM_Rabin96Streaming)->Args({1 << 20, 4 << 10})->Args({1 << 20, 64});

void BM_RabinRollingWindow(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const hash::RabinPoly poly;
  hash::RabinWindow window(poly, 48);
  for (auto _ : state) {
    std::uint64_t fp = 0;
    for (std::byte b : data) fp = window.push(b);
    benchmark::DoNotOptimize(fp);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RabinRollingWindow)->Arg(1 << 20);

void BM_RabinWindowWarm(benchmark::State& state) {
  // The bulk-path warm-up the min-skip CDC loop performs once per chunk:
  // prime a 48-byte window from a 47-byte tail.
  const ByteBuffer data = make_data(47);
  const hash::RabinPoly poly;
  const hash::RabinWindowTable table(poly, 48);
  hash::RabinWindow window(table);
  for (auto _ : state) {
    window.warm(data);
    benchmark::DoNotOptimize(window.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 47);
}
BENCHMARK(BM_RabinWindowWarm);

}  // namespace

BENCHMARK_MAIN();
