// Google-benchmark microbenchmarks for the three fingerprint functions
// and the Rabin rolling window (CDC's inner loop).
#include <benchmark/benchmark.h>

#include "hash/md5.hpp"
#include "hash/rabin.hpp"
#include "hash/sha1.hpp"
#include "util/rng.hpp"

namespace {

using namespace aadedupe;

ByteBuffer make_data(std::size_t size) {
  ByteBuffer data(size);
  Xoshiro256 rng(size);
  rng.fill(data);
  return data;
}

void BM_Md5(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Md5::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(8 << 10)->Arg(1 << 20);

void BM_Sha1(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(8 << 10)->Arg(1 << 20);

void BM_Rabin96(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Rabin96::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Rabin96)->Arg(8 << 10)->Arg(1 << 20);

void BM_RabinRollingWindow(benchmark::State& state) {
  const ByteBuffer data = make_data(static_cast<std::size_t>(state.range(0)));
  const hash::RabinPoly poly;
  hash::RabinWindow window(poly, 48);
  for (auto _ : state) {
    std::uint64_t fp = 0;
    for (std::byte b : data) fp = window.push(b);
    benchmark::DoNotOptimize(fp);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RabinRollingWindow)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
