// Figure 8: deduplication efficiency — the paper's "bytes saved per
// second" metric, DE = (1 - 1/DR) x DT — per backup session for the five
// schemes.
//
// Paper claims: AA-Dedupe's DE is ~2x BackupPC, ~5x SAM and ~7x Avamar on
// average, driven by application-aware chunking (cheap where redundancy
// is absent), adaptive weak hashing, and small RAM-resident per-app
// indices instead of one monolithic on-disk index.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  const auto config = bench::BenchConfig::from_env();
  std::printf("=== Fig. 8: dedup efficiency, bytes saved per second (MB/s) "
              "===\n");
  const auto runs = bench::run_suite(config, bench::scheme_names(false));
  std::printf("\n");

  std::vector<std::string> headers{"session"};
  for (const auto& run : runs) headers.push_back(run.name);
  metrics::TableWriter table(std::move(headers));

  std::vector<double> totals(runs.size(), 0.0);
  for (std::uint32_t s = 0; s < config.sessions; ++s) {
    std::vector<std::string> row{std::to_string(s + 1)};
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const double de = runs[r].reports[s].bytes_saved_per_second() / 1e6;
      totals[r] += de;
      row.push_back(metrics::TableWriter::num(de, 1));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\naverage DE (MB/s): ");
  double aa_avg = 0.0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const double avg = totals[r] / config.sessions;
    if (runs[r].name == "AA-Dedupe") aa_avg = avg;
    std::printf("%s %.1f  ", runs[r].name.c_str(), avg);
  }
  std::printf("\nAA-Dedupe multiples: ");
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (runs[r].name == "AA-Dedupe") continue;
    const double avg = totals[r] / config.sessions;
    std::printf("%.1fx vs %s  ", avg > 0 ? aa_avg / avg : 0.0,
                runs[r].name.c_str());
  }
  std::printf("\nshape checks (paper): AA-Dedupe highest every session; "
              "~2x BackupPC, ~5x SAM, ~7x Avamar on average.\n");
  return 0;
}
