#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include <chrono>
#include <thread>

#include "backup/chunk_level.hpp"
#include "backup/file_level.hpp"
#include "backup/full_backup.hpp"
#include "backup/incremental.hpp"
#include "backup/sam.hpp"
#include "core/aa_dedupe.hpp"
#include "telemetry/build_info.hpp"
#include "telemetry/env.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/json.hpp"
#include "telemetry/log.hpp"
#include "telemetry/run_report.hpp"

namespace aadedupe::bench {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  return telemetry::env_u64(name, fallback);
}

double env_double(const char* name, double fallback) {
  return telemetry::env_double(name, fallback);
}

std::string env_str(const char* name) { return telemetry::env_str(name); }

namespace {
/// Truncate-write a small text artifact; failures log and move on (an
/// observability artifact must never take the measured run down).
void write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    AAD_LOG(&telemetry::stderr_logger(), kWarn, "session",
            "cannot open %s=%s", what, path.c_str());
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}
}  // namespace

Observability::Observability()
    : report_path_(env_str("AAD_RUN_REPORT")),
      trace_path_(env_str("AAD_TRACE_OUT")),
      profile_path_(env_str("AAD_PROFILE_OUT")),
      prom_path_(env_str("AAD_PROM_OUT")) {
  if (!trace_path_.empty()) exporter_.attach(telemetry_.trace);
  if (const std::string flight_path = env_str("AAD_FLIGHT_OUT");
      !flight_path.empty()) {
    telemetry_.flight.set_dump_path(flight_path);
  }
  telemetry_.timeline.set_interval(
      env_double("AAD_SNAPSHOT_INTERVAL_S", telemetry::Timeline::kDefaultIntervalS));
  // Context logger to stderr, floored at warn so demo stdout stays clean;
  // AAD_LOG_LEVEL=info (or debug/trace) opens up the stream.
  const std::string log_level = env_str("AAD_LOG_LEVEL");
  telemetry_.log.add_sink(telemetry::make_stderr_sink());
  telemetry_.log.set_level(telemetry::parse_log_level(
      log_level.empty() ? nullptr : log_level.c_str(),
      telemetry::LogLevel::kWarn));
  telemetry::install_global_flight_recorder(&telemetry_.flight);

  // Live ops plane: a HealthMonitor whenever any SLO/ops knob asks for
  // one, an introspection server when AAD_OPS_PORT is set.
  const std::string ops_port = env_str("AAD_OPS_PORT");
  const double slo_bws = env_double("AAD_SLO_BACKUP_WINDOW_S", 0.0);
  const double slo_rate = env_double("AAD_SLO_BYTES_SAVED_PER_S", 0.0);
  if (!ops_port.empty() || slo_bws > 0.0 || slo_rate > 0.0) {
    telemetry::HealthMonitorOptions health_options;
    health_options.slo.backup_window_s = slo_bws;
    health_options.slo.bytes_saved_per_s = slo_rate;
    health_options.default_stall_deadline_s =
        env_double("AAD_STALL_DEADLINE_S",
                   health_options.default_stall_deadline_s);
    health_ = std::make_unique<telemetry::HealthMonitor>(telemetry_,
                                                         health_options);
  }
  if (!ops_port.empty()) {
    ops_linger_s_ = env_double("AAD_OPS_LINGER_S", 0.0);
    telemetry::OpsServerOptions ops_options;
    ops_options.port = static_cast<std::uint16_t>(env_u64("AAD_OPS_PORT", 0));
    ops_ = std::make_unique<telemetry::OpsServer>(ops_options);
    ops_->wire_telemetry(telemetry_);
    try {
      ops_->start();
      AAD_LOG(&telemetry_.log, kInfo, "session",
              "ops server listening on 127.0.0.1:%u",
              static_cast<unsigned>(ops_->port()));
    } catch (const std::exception& e) {
      // The ops plane is auxiliary: a busy port must not take the
      // measured run down.
      AAD_LOG(&telemetry_.log, kWarn, "session", "ops server not started: %s",
              e.what());
      ops_.reset();
    }
  }

  if (!prom_path_.empty() || health_) {
    // Timeline-sample piggyback (the hook runs outside the timeline
    // mutex, so snapshotting the registry here is safe): refresh the
    // Prometheus scrape file and drive the stall watchdog from the same
    // heartbeat the curves use.
    telemetry_.timeline.set_sample_hook([this](double t_s) {
      if (health_) health_->tick(t_s);
      if (!prom_path_.empty()) {
        write_text_file(
            prom_path_,
            telemetry::to_prometheus_text(telemetry_.metrics.snapshot()),
            "AAD_PROM_OUT");
      }
    });
  }
  if (!profile_path_.empty()) {
    profiler_ = std::make_unique<telemetry::SpanProfiler>();
    profiler_->start();
  }
}

Observability::~Observability() {
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
  if (telemetry::global_flight_recorder() == &telemetry_.flight) {
    telemetry::install_global_flight_recorder(nullptr);
  }
}

std::string Observability::finish(
    const std::function<void(telemetry::RunReport&)>& fill) {
  if (finished_) return report_path_;
  finished_ = true;
  if (profiler_ && profiler_->running()) profiler_->stop();
  telemetry_.timeline.force_sample(telemetry_.trace.now());
  if (!prom_path_.empty()) {
    write_text_file(prom_path_,
                    telemetry::to_prometheus_text(telemetry_.metrics.snapshot()),
                    "AAD_PROM_OUT");
  }
  if (profiler_ && !profile_path_.empty()) {
    write_text_file(profile_path_, profiler_->folded_text(), "AAD_PROFILE_OUT");
  }
  if (!trace_path_.empty()) {
    // Counter tracks under the span timeline: shipped bytes and the
    // upload queue's high-water mark, one point per timeline sample.
    telemetry::JsonValue curves;
    telemetry_.timeline.fill_json(curves);
    const telemetry::JsonValue* times = curves.find("t_s");
    const telemetry::JsonValue* series = curves.find("series");
    for (const char* name : {"container.bytes", "pipeline.queue_depth"}) {
      const telemetry::JsonValue* column =
          series != nullptr ? series->find(name) : nullptr;
      if (times == nullptr || column == nullptr) continue;
      for (std::size_t i = 0; i < times->size() && i < column->size(); ++i) {
        exporter_.add_counter(name, times->array_items()[i].as_double(),
                              column->array_items()[i].as_double());
      }
    }
    exporter_.write_file(trace_path_);
  }
  if (!report_path_.empty()) {
    telemetry::RunReport report;
    report.add_telemetry(telemetry_);
    if (profiler_) profiler_->fill_json(report.section("profiler"));
    if (health_) health_->fill_healthz_json(report.section("health"));
    if (fill) fill(report);
    report.write_file(report_path_);
  }
  if (ops_ && ops_->running()) {
    if (ops_linger_s_ > 0.0) {
      // Give an external scraper (the CI curl loop) a final stable
      // window before the endpoints disappear.
      AAD_LOG(&telemetry_.log, kInfo, "session",
              "ops server lingering %.1fs on port %u", ops_linger_s_,
              static_cast<unsigned>(ops_->port()));
      std::this_thread::sleep_for(
          std::chrono::duration<double>(ops_linger_s_));
    }
    ops_->stop();
  }
  return report_path_;
}

BenchConfig BenchConfig::from_env() {
  BenchConfig config;
  config.session_mib = env_u64("AAD_BENCH_MIB", config.session_mib);
  config.sessions = static_cast<std::uint32_t>(
      env_u64("AAD_BENCH_SESSIONS", config.sessions));
  config.seed = env_u64("AAD_BENCH_SEED", config.seed);
  return config;
}

dataset::DatasetConfig BenchConfig::dataset_config() const {
  dataset::DatasetConfig dc;
  dc.seed = seed;
  dc.session_bytes = session_mib * 1024 * 1024;
  dc.max_file_bytes = 8ull * 1024 * 1024;
  return dc;
}

std::vector<std::string> scheme_names(bool include_full) {
  std::vector<std::string> names;
  if (include_full) names.push_back("FullBackup");
  names.insert(names.end(),
               {"JungleDisk", "BackupPC", "Avamar", "SAM", "AA-Dedupe"});
  return names;
}

std::unique_ptr<backup::BackupScheme> make_scheme(
    const std::string& name, cloud::CloudTarget& target,
    telemetry::Telemetry* telemetry) {
  if (name == "FullBackup") {
    return std::make_unique<backup::FullBackupScheme>(target);
  }
  if (name == "JungleDisk") {
    return std::make_unique<backup::IncrementalScheme>(target);
  }
  if (name == "BackupPC") {
    return std::make_unique<backup::FileLevelScheme>(target);
  }
  if (name == "Avamar") {
    return std::make_unique<backup::ChunkLevelScheme>(target);
  }
  if (name == "SAM") {
    return std::make_unique<backup::SamScheme>(target);
  }
  if (name == "AA-Dedupe") {
    core::AaDedupeOptions options;
    options.telemetry = telemetry;
    return std::make_unique<core::AaDedupeScheme>(target, options);
  }
  AAD_LOG(&telemetry::stderr_logger(), kError, "session",
          "unknown scheme '%s'", name.c_str());
  std::abort();
}

std::vector<dataset::Snapshot> suite_snapshots(const BenchConfig& config) {
  dataset::DatasetGenerator generator(config.dataset_config());
  return generator.sessions(config.sessions);
}

std::string build_metadata_json(int indent) {
  telemetry::JsonValue build;
  telemetry::BuildInfo::current().fill_json(build);
  return build.dump(indent);
}

namespace {
/// Optional raw export of every (scheme, session) report for external
/// plotting: set AAD_BENCH_CSV=<path> and every run_suite() appends rows.
void maybe_export_csv(const BenchConfig& config,
                      const std::vector<SchemeRun>& runs) {
  const std::string path = env_str("AAD_BENCH_CSV");
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    AAD_LOG(&telemetry::stderr_logger(), kWarn, "session",
            "cannot open AAD_BENCH_CSV=%s", path.c_str());
    return;
  }
  if (std::ftell(f) == 0) {
    std::fprintf(f,
                 "seed,session_mib,scheme,session,dataset_bytes,"
                 "transferred_bytes,upload_requests,cumulative_stored_bytes,"
                 "dedupe_seconds,cpu_seconds,transfer_seconds,dedupe_ratio,"
                 "bytes_saved_per_second,backup_window_seconds\n");
  }
  for (const SchemeRun& run : runs) {
    for (const auto& r : run.reports) {
      std::fprintf(
          f, "%llu,%llu,%s,%u,%llu,%llu,%llu,%llu,%.6f,%.6f,%.6f,%.4f,%.1f,"
             "%.3f\n",
          static_cast<unsigned long long>(config.seed),
          static_cast<unsigned long long>(config.session_mib),
          run.name.c_str(), r.session,
          static_cast<unsigned long long>(r.dataset_bytes),
          static_cast<unsigned long long>(r.transferred_bytes),
          static_cast<unsigned long long>(r.upload_requests),
          static_cast<unsigned long long>(r.cumulative_stored_bytes),
          r.dedupe_seconds, r.cpu_seconds, r.transfer_seconds,
          r.dedupe_ratio(), r.bytes_saved_per_second(),
          r.backup_window_seconds());
    }
  }
  std::fclose(f);
}
}  // namespace

std::vector<SchemeRun> run_suite(const BenchConfig& config,
                                 const std::vector<std::string>& names) {
  const auto snapshots = suite_snapshots(config);
  std::printf("# workload: %u weekly sessions, ~%llu MiB/session, seed %llu\n",
              config.sessions,
              static_cast<unsigned long long>(config.session_mib),
              static_cast<unsigned long long>(config.seed));

  // AAD_BENCH_REPORT=<path>: the AA-Dedupe run gets a telemetry context
  // and leaves a structured run report behind.
  const std::string report_path = env_str("AAD_BENCH_REPORT");
  telemetry::Telemetry telemetry;

  std::vector<SchemeRun> runs;
  runs.reserve(names.size());
  for (const std::string& name : names) {
    cloud::CloudTarget target;
    const bool report_this = !report_path.empty() && name == "AA-Dedupe";
    auto scheme = make_scheme(name, target, report_this ? &telemetry : nullptr);
    SchemeRun run;
    run.name = name;
    for (const auto& snapshot : snapshots) {
      run.reports.push_back(scheme->backup(snapshot));
    }
    const cloud::StoreStats stats = target.store().stats();
    run.final_stored_bytes = target.store().stored_bytes();
    run.total_uploaded_bytes = stats.bytes_uploaded;
    run.total_upload_requests = stats.put_requests;
    run.monthly_cost = target.monthly_cost();
    runs.push_back(std::move(run));
    std::printf("# ran %-10s (%zu sessions)\n", name.c_str(),
                runs.back().reports.size());

    if (report_this) {
      telemetry::RunReport report;
      telemetry::JsonValue& workload = report.section("workload");
      workload["session_mib"] = config.session_mib;
      workload["sessions"] = config.sessions;
      workload["seed"] = config.seed;
      report.add_telemetry(telemetry);
      if (auto* aa = dynamic_cast<core::AaDedupeScheme*>(scheme.get())) {
        aa->fill_run_report(report);
      }
      target.fill_run_report(report);
      if (!run.reports.empty()) {
        backup::fill_run_report(run.reports.back(), report);
      }
      report.write_file(report_path);
      std::printf("# wrote run report to %s\n", report_path.c_str());
    }
  }
  maybe_export_csv(config, runs);
  return runs;
}

}  // namespace aadedupe::bench
