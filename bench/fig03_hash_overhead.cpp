// Figure 3: computational overhead of typical hash functions.
//
// The paper measures execution times of Rabin hash, MD5 and SHA-1 for
// WFC-based dedup (hash whole files) and SC-based dedup (hash 8 KB
// chunks) over a 60 MB dataset, observing that (a) total time is nearly
// the same for WFC and SC at equal data volume — computation is dominated
// by data capacity, not granularity (Observation 4) — and (b) weaker
// hashes cost measurably less.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "dataset/generator.hpp"
#include "hash/hash_kind.hpp"
#include "metrics/table_writer.hpp"
#include "util/stopwatch.hpp"
#include "util/units.hpp"

namespace {

using namespace aadedupe;

double time_hashing(const chunk::Chunker& chunker, hash::HashKind kind,
                    const std::vector<ByteBuffer>& files, int repeats) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    StopWatch watch;
    std::uint64_t sink = 0;
    for (const ByteBuffer& content : files) {
      for (const chunk::ChunkRef& ref : chunker.split(content)) {
        const hash::Digest digest = hash::compute_digest(
            kind, ConstByteSpan{content}.subspan(ref.offset, ref.length));
        sink ^= digest.prefix64();
      }
    }
    const double elapsed = watch.seconds();
    if (elapsed < best) best = elapsed;
    // Defeat optimizing-away of the hash loop.
    if (sink == 0xdeadbeef) std::printf("!");
  }
  return best;
}

}  // namespace

int main() {
  // Build the paper's 60 MB mixed dataset from the synthetic generator.
  dataset::DatasetConfig config;
  config.seed = bench::BenchConfig::from_env().seed;
  config.session_bytes = 60ull * 1000 * 1000;
  dataset::DatasetGenerator generator(config);
  const dataset::Snapshot snapshot = generator.initial();

  std::vector<ByteBuffer> files;
  std::uint64_t total = 0;
  for (const auto& entry : snapshot.files) {
    files.push_back(dataset::materialize(entry.content));
    total += files.back().size();
  }

  std::printf("=== Fig. 3: computational overhead of hash functions "
              "(%s dataset) ===\n\n", format_bytes(total).c_str());

  const chunk::WholeFileChunker wfc;
  const chunk::StaticChunker sc;

  metrics::TableWriter table({"hash", "WFC time (s)", "WFC MB/s",
                              "SC time (s)", "SC MB/s"});
  for (const hash::HashKind kind :
       {hash::HashKind::kRabin96, hash::HashKind::kMd5,
        hash::HashKind::kSha1}) {
    const double wfc_s = time_hashing(wfc, kind, files, 3);
    const double sc_s = time_hashing(sc, kind, files, 3);
    table.add_row({std::string(hash::to_string(kind)),
                   metrics::TableWriter::num(wfc_s, 3),
                   metrics::TableWriter::num(
                       static_cast<double>(total) / wfc_s / 1e6, 1),
                   metrics::TableWriter::num(sc_s, 3),
                   metrics::TableWriter::num(
                       static_cast<double>(total) / sc_s / 1e6, 1)});
  }
  table.print();
  std::printf("\nshape checks (paper): WFC time ~= SC time per hash "
              "(capacity-dominated); rabin96 < md5 < sha1 in cost.\n");
  return 0;
}
