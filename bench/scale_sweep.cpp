// Scale-robustness sweep: the reproduction's headline claims must hold
// across dataset scales, not just at the default 32 MiB/session — this is
// the check that the figure shapes are properties of the *system*, not of
// one lucky workload size.
//
// Runs the five-scheme suite at three session sizes and prints, for each
// scale: the Fig. 8 DE multiples (AA vs BackupPC / SAM / Avamar), the
// Fig. 9 window advantage, and the Fig. 10 cost advantage.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "metrics/table_writer.hpp"

int main() {
  using namespace aadedupe;

  auto base = bench::BenchConfig::from_env();
  base.sessions = std::min<std::uint32_t>(base.sessions, 6);

  metrics::TableWriter table({"MiB/session", "DE x BackupPC", "DE x SAM",
                              "DE x Avamar", "BWS advantage",
                              "cost advantage"});
  for (const std::uint64_t mib : {8ull, 16ull, 32ull}) {
    bench::BenchConfig config = base;
    config.session_mib = mib;
    const auto runs = bench::run_suite(config, bench::scheme_names(false));

    double aa_de = 0, bpc_de = 0, sam_de = 0, av_de = 0;
    double aa_bws = 0, best_other_bws = 1e300;
    double aa_cost = 0, best_other_cost = 1e300;
    for (const auto& run : runs) {
      double de_sum = 0, bws_sum = 0;
      for (const auto& report : run.reports) {
        de_sum += report.bytes_saved_per_second();
        bws_sum += report.backup_window_seconds();
      }
      const double de = de_sum / static_cast<double>(run.reports.size());
      if (run.name == "AA-Dedupe") {
        aa_de = de;
        aa_bws = bws_sum;
        aa_cost = run.monthly_cost;
      } else {
        if (run.name == "BackupPC") bpc_de = de;
        if (run.name == "SAM") sam_de = de;
        if (run.name == "Avamar") av_de = de;
        best_other_bws = std::min(best_other_bws, bws_sum);
        best_other_cost = std::min(best_other_cost, run.monthly_cost);
      }
    }
    table.add_row(
        {metrics::TableWriter::integer(mib),
         metrics::TableWriter::num(aa_de / bpc_de, 1) + "x",
         metrics::TableWriter::num(aa_de / sam_de, 1) + "x",
         metrics::TableWriter::num(aa_de / av_de, 1) + "x",
         metrics::TableWriter::percent(1.0 - aa_bws / best_other_bws),
         metrics::TableWriter::percent(1.0 - aa_cost / best_other_cost)});
  }
  std::printf("\n=== Scale sweep: headline ratios vs session size ===\n\n");
  table.print();
  std::printf("\nshape checks: every column stays in its band across "
              "scales — AA-Dedupe leads DE at 2x+ over BackupPC/SAM and "
              "larger over Avamar, with positive window and cost "
              "advantages, at 8, 16 and 32 MiB per session.\n");
  return 0;
}
