// Ablation: container capacity sweep (paper Section III.F fixes 1 MB).
//
// Runs an AA-Dedupe session at container capacities from 64 KB to 4 MB
// and reports upload requests, shipped bytes, request cost and transfer
// time — showing why ~1 MB is a sweet spot: larger containers stop
// helping request cost but delay shipping; smaller ones multiply
// requests. Also reports the padded-flush variant's overhead (the
// paper's pad-to-full-size behaviour).
#include <cstdio>

#include "bench_common.hpp"
#include "cloud/cost_model.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  const auto bench_config = bench::BenchConfig::from_env();
  dataset::DatasetConfig config = bench_config.dataset_config();
  dataset::DatasetGenerator generator(config);
  const auto snapshots = generator.sessions(2);

  std::printf("=== Ablation: container capacity sweep (2 sessions, ~%llu "
              "MiB each) ===\n\n",
              static_cast<unsigned long long>(bench_config.session_mib));

  const cloud::CostModel pricing;
  metrics::TableWriter table({"capacity", "requests", "shipped",
                              "request $", "transfer s"});
  for (const std::size_t capacity :
       {64ull << 10, 256ull << 10, 1ull << 20, 4ull << 20}) {
    cloud::CloudTarget target;
    core::AaDedupeOptions options;
    options.container_capacity = capacity;
    core::AaDedupeScheme scheme(target, options);
    double transfer = 0;
    for (const auto& snapshot : snapshots) {
      transfer += scheme.backup(snapshot).transfer_seconds;
    }
    const auto stats = target.store().stats();
    table.add_row({format_bytes(capacity),
                   metrics::TableWriter::integer(stats.put_requests),
                   format_bytes(stats.bytes_uploaded),
                   metrics::TableWriter::num(
                       pricing.request_cost(stats.put_requests), 5),
                   metrics::TableWriter::num(transfer, 1)});
  }
  table.print();

  // Padding overhead at 1 MB capacity: pad-on-flush (paper's local-disk
  // behaviour) vs unpadded shipping (our cloud default).
  std::printf("\npad-on-flush overhead at 1 MiB capacity:\n");
  for (const bool pad : {false, true}) {
    cloud::CloudTarget target;
    container::ContainerIdAllocator ids;
    std::uint64_t shipped_bytes = 0, shipped_count = 0;
    container::ContainerManager manager(
        ids,
        [&](std::uint64_t, ByteBuffer bytes) {
          shipped_bytes += bytes.size();
          ++shipped_count;
        },
        1 << 20, pad);
    // One stream of mixed chunk sizes, flushed at the end of the session.
    dataset::DatasetGenerator gen2(config);
    const auto snapshot = gen2.initial();
    for (const auto& entry : snapshot.files) {
      const ByteBuffer content = dataset::materialize(entry.content);
      if (content.empty()) continue;
      manager.store(hash::Sha1::hash(content), content);
    }
    manager.flush();
    std::printf("  pad=%s : %llu containers, %s shipped, %s padding\n",
                pad ? "yes" : "no ",
                static_cast<unsigned long long>(shipped_count),
                format_bytes(shipped_bytes).c_str(),
                format_bytes(manager.padding_bytes()).c_str());
  }
  return 0;
}
