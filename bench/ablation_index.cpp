// Ablation: application-aware partitioned index vs one monolithic global
// index — the design choice of paper Section III.E / Fig. 6.
//
// Measures three effects:
//   1. serial lookup throughput (small per-app indices vs one big map),
//   2. concurrent lookup throughput (per-shard locks vs one global lock —
//      the parallelism Observation 2 enables),
//   3. simulated disk-index cache behaviour: a monolithic index whose
//      working set overflows the RAM cache thrashes, while per-app
//      shards individually fit (modeled hit rates).
#include <cstdio>
#include <thread>
#include <vector>

#include <filesystem>

#include "bench_common.hpp"
#include "hash/sha1.hpp"
#include "index/log_structured_index.hpp"
#include "index/memory_index.hpp"
#include "index/partitioned_index.hpp"
#include "index/sim_disk_index.hpp"
#include "metrics/table_writer.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace aadedupe;

constexpr std::size_t kApps = 12;
constexpr std::size_t kChunksPerApp = 40000;

std::vector<std::vector<hash::Digest>> make_digests() {
  std::vector<std::vector<hash::Digest>> per_app(kApps);
  for (std::size_t a = 0; a < kApps; ++a) {
    per_app[a].reserve(kChunksPerApp);
    for (std::size_t i = 0; i < kChunksPerApp; ++i) {
      per_app[a].push_back(hash::Sha1::hash(
          as_bytes("app" + std::to_string(a) + "/" + std::to_string(i))));
    }
  }
  return per_app;
}

double lookups_per_second_serial(index::ChunkIndex& idx,
                                 const std::vector<hash::Digest>& digests,
                                 int rounds) {
  StopWatch watch;
  for (int r = 0; r < rounds; ++r) {
    for (const auto& d : digests) (void)idx.lookup(d);
  }
  return static_cast<double>(digests.size()) * rounds / watch.seconds();
}

}  // namespace

int main() {
  std::printf("=== Ablation: application-aware partitioned index vs global "
              "index ===\n");
  std::printf("%zu apps x %zu chunks\n\n", kApps, kChunksPerApp);

  const auto per_app = make_digests();

  // Build both index organizations with identical contents.
  index::MemoryChunkIndex global;
  index::PartitionedIndex partitioned;
  for (std::size_t a = 0; a < kApps; ++a) {
    index::ChunkIndex& shard = partitioned.shard("app" + std::to_string(a));
    for (const auto& d : per_app[a]) {
      const index::ChunkLocation loc{a, 0, 8192};
      global.insert(d, loc);
      shard.insert(d, loc);
    }
  }

  // 1. Serial lookups (all apps interleaved).
  std::vector<hash::Digest> all;
  for (const auto& app : per_app) {
    all.insert(all.end(), app.begin(), app.end());
  }
  const double global_serial = lookups_per_second_serial(global, all, 3);

  StopWatch watch;
  for (int r = 0; r < 3; ++r) {
    for (std::size_t a = 0; a < kApps; ++a) {
      index::ChunkIndex& shard = partitioned.shard("app" + std::to_string(a));
      for (const auto& d : per_app[a]) (void)shard.lookup(d);
    }
  }
  const double part_serial =
      static_cast<double>(all.size()) * 3 / watch.seconds();

  // 2. Concurrent lookups: one thread per application.
  auto concurrent = [&](auto&& lookup_fn) {
    StopWatch w;
    std::vector<std::thread> threads;
    for (std::size_t a = 0; a < kApps; ++a) {
      threads.emplace_back([&, a] {
        for (int r = 0; r < 3; ++r) {
          for (const auto& d : per_app[a]) lookup_fn(a, d);
        }
      });
    }
    for (auto& t : threads) t.join();
    return static_cast<double>(all.size()) * 3 / w.seconds();
  };
  const double global_parallel = concurrent(
      [&](std::size_t, const hash::Digest& d) { (void)global.lookup(d); });
  // Resolve each application's shard once (as the dedup streams do), then
  // probe lock-free with respect to other applications.
  std::vector<index::ChunkIndex*> shards;
  for (std::size_t a = 0; a < kApps; ++a) {
    shards.push_back(&partitioned.shard("app" + std::to_string(a)));
  }
  const double part_parallel =
      concurrent([&](std::size_t a, const hash::Digest& d) {
        (void)shards[a]->lookup(d);
      });

  metrics::TableWriter table({"organization", "serial Mlookups/s",
                              "12-thread Mlookups/s", "parallel speedup"});
  table.add_row({"global (monolithic)",
                 metrics::TableWriter::num(global_serial / 1e6, 2),
                 metrics::TableWriter::num(global_parallel / 1e6, 2),
                 metrics::TableWriter::num(global_parallel / global_serial,
                                           2)});
  table.add_row({"partitioned (app-aware)",
                 metrics::TableWriter::num(part_serial / 1e6, 2),
                 metrics::TableWriter::num(part_parallel / 1e6, 2),
                 metrics::TableWriter::num(part_parallel / part_serial, 2)});
  table.print();

  // 3. Simulated RAM-cache behaviour with a cache sized for ONE
  // application's index — the paper's design point: each small per-app
  // index stays RAM-resident, while the monolithic index streams 12 apps'
  // fingerprints through the same budget and thrashes.
  index::SimDiskOptions options;
  options.cache_entries = kChunksPerApp;
  options.miss_seek_seconds = 0.0;
  options.insert_seconds = 0.0;

  double sink = 0;
  index::SimulatedDiskIndex sim_global(
      std::make_unique<index::MemoryChunkIndex>(), options,
      [&sink](double s) { sink += s; });
  for (const auto& d : all) sim_global.insert(d, {});
  // Two passes of interleaved cross-app lookups (a backup session scans
  // apps in turn).
  for (int r = 0; r < 2; ++r) {
    for (const auto& d : all) (void)sim_global.lookup(d);
  }
  const double global_hit_rate =
      static_cast<double>(sim_global.cache_hits()) /
      static_cast<double>(sim_global.cache_hits() + sim_global.cache_misses());

  std::uint64_t shard_hits = 0, shard_misses = 0;
  for (std::size_t a = 0; a < kApps; ++a) {
    index::SimulatedDiskIndex sim_shard(
        std::make_unique<index::MemoryChunkIndex>(), options,
        [&sink](double s) { sink += s; });
    for (const auto& d : per_app[a]) sim_shard.insert(d, {});
    for (int r = 0; r < 2; ++r) {
      for (const auto& d : per_app[a]) (void)sim_shard.lookup(d);
    }
    shard_hits += sim_shard.cache_hits();
    shard_misses += sim_shard.cache_misses();
  }
  const double shard_hit_rate =
      static_cast<double>(shard_hits) /
      static_cast<double>(shard_hits + shard_misses);

  std::printf("\nsimulated RAM-cache hit rate (cache sized for one app's "
              "index): global %.1f%%, per-app shards %.1f%%\n",
              100 * global_hit_rate, 100 * shard_hit_rate);

  // 4. RAM-resident shards vs the on-disk log-structured backend: the
  // same partitioned workload with durable per-app shards. Hits pay the
  // entry cache, misses are absorbed by the bloom filter — the throughput
  // gap versus MemoryChunkIndex is the price of durability at scale.
  const auto lsi_dir = std::filesystem::temp_directory_path() /
                       "aad_ablation_index_lsi";
  std::filesystem::remove_all(lsi_dir);
  {
    index::LogStructuredIndex::Options lsi_options;
    lsi_options.memtable_limit = 8192;  // several sealed segments per app
    index::PartitionedIndex durable(
        index::log_structured_shard_factory(lsi_dir, lsi_options));
    StopWatch build_watch;
    for (std::size_t a = 0; a < kApps; ++a) {
      index::ChunkIndex& shard = durable.shard("app" + std::to_string(a));
      for (const auto& d : per_app[a]) {
        shard.insert(d, index::ChunkLocation{a, 0, 8192});
      }
    }
    const double lsi_insert_rate =
        static_cast<double>(all.size()) / build_watch.seconds();

    StopWatch hit_watch;
    for (std::size_t a = 0; a < kApps; ++a) {
      index::ChunkIndex& shard = durable.shard("app" + std::to_string(a));
      for (const auto& d : per_app[a]) (void)shard.lookup(d);
    }
    const double lsi_hit_rate_ls =
        static_cast<double>(all.size()) / hit_watch.seconds();

    StopWatch miss_watch;
    for (std::size_t a = 0; a < kApps; ++a) {
      index::ChunkIndex& shard = durable.shard("app" + std::to_string(a));
      for (std::size_t i = 0; i < kChunksPerApp; ++i) {
        (void)shard.lookup(hash::Sha1::hash(
            as_bytes("absent" + std::to_string(a * kChunksPerApp + i))));
      }
    }
    const double lsi_miss_rate =
        static_cast<double>(all.size()) / miss_watch.seconds();

    const index::IndexStats lsi_stats = durable.total_stats();
    const double filter_negative_rate =
        lsi_stats.filter_probes > 0
            ? static_cast<double>(lsi_stats.filter_negatives) /
                  static_cast<double>(lsi_stats.filter_probes)
            : 0.0;
    std::printf("\nlog-structured shards (durable, on-disk): insert %.2f "
                "Mops/s, hit lookup %.2f Mops/s, miss lookup %.2f Mops/s\n",
                lsi_insert_rate / 1e6, lsi_hit_rate_ls / 1e6,
                lsi_miss_rate / 1e6);
    std::printf("bloom absorption across the run: %.1f%% of probes answered "
                "without disk (%llu false positives, %llu disk reads)\n",
                100 * filter_negative_rate,
                static_cast<unsigned long long>(
                    lsi_stats.filter_false_positives),
                static_cast<unsigned long long>(lsi_stats.disk_reads));
  }
  std::filesystem::remove_all(lsi_dir);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host hardware threads: %u%s\n", hw,
              hw <= 1 ? "  (single-core host: thread-level speedups cannot "
                        "materialize here; the per-shard locking still "
                        "removes the global index's serialization point)"
                      : "");
  std::printf("shape checks: partitioned >= global on serial lookups; on "
              "multi-core hosts partitioned scales with threads while the "
              "global index serializes on its lock; per-app shards stay "
              "RAM-resident (100%% hits) while the monolithic index "
              "thrashes.\n");
  return sink < 0 ? 1 : 0;
}
