// Shared driver for the figure-reproduction benches: builds the paper's
// five-scheme lineup (plus the full-backup reference), runs them over the
// same weekly snapshot sequence, and collects per-session reports.
//
// Scale knobs (environment variables):
//   AAD_BENCH_MIB       MiB per backup session        (default 32)
//   AAD_BENCH_SESSIONS  number of weekly sessions     (default 10)
//   AAD_BENCH_SEED      dataset seed                  (default 20110926,
//                       the CLUSTER'11 conference date)
//   AAD_BENCH_REPORT    when set, run_suite() attaches a telemetry context
//                       to the AA-Dedupe run and writes a structured run
//                       report (metrics, stage spans, per-application
//                       dedup, transport counters) to this JSON path
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "backup/scheme.hpp"
#include "cloud/cloud_target.hpp"
#include "dataset/generator.hpp"
#include "telemetry/health.hpp"
#include "telemetry/ops_server.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

namespace aadedupe::bench {

/// Compiler sink: force `value` to be materialized so a measured body can't
/// be dead-code-eliminated (the classic empty-asm idiom). Pass the actual
/// output of the work (digest, chunk vector, accumulator) — a `volatile`
/// copy of a derived size is NOT enough, as the optimizer may still elide
/// the work that produced it.
template <class T>
inline void do_not_optimize(const T& value) noexcept {
  __asm__ __volatile__("" : : "g"(&value) : "memory");
}

/// Compiler barrier: force pending writes to be considered observable.
inline void clobber_memory() noexcept { __asm__ __volatile__("" ::: "memory"); }

/// Environment parsing shared by every bench and example entry point.
/// Thin aliases of the telemetry::env_* helpers (src/telemetry/env.hpp),
/// kept so existing bench call sites read naturally.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);
[[nodiscard]] double env_double(const char* name, double fallback);
/// Empty string when unset or empty.
[[nodiscard]] std::string env_str(const char* name);

/// Observability wiring for entry points, driven by environment variables:
///
///   AAD_RUN_REPORT=<path>          write a structured run report
///   AAD_TRACE_OUT=<path>           write a Chrome-trace/Perfetto
///                                  trace.json of every span
///   AAD_FLIGHT_OUT=<path>          flight-recorder artifact path (written
///                                  by dump triggers: check failures,
///                                  uploader exceptions, retry exhaustion)
///   AAD_SNAPSHOT_INTERVAL_S=<sec>  metrics timeline sample interval
///   AAD_LOG_LEVEL=<level>          stderr log floor for the context
///                                  logger (default warn; "off" silences)
///   AAD_PROFILE_OUT=<path>         run the SIGPROF span-attributed
///                                  sampling profiler for the whole
///                                  process and write folded stacks
///                                  (flamegraph input; see
///                                  `report.py flame`) on finish
///   AAD_PROM_OUT=<path>            Prometheus text exposition of the
///                                  metrics registry, refreshed at every
///                                  timeline sample and on finish
///   AAD_OPS_PORT=<port>            start the live ops plane (HTTP/1.0
///                                  on loopback): /metrics, /varz,
///                                  /healthz, /tracez, /flightz. Port 0
///                                  picks an ephemeral port — read it
///                                  via ops_server()->port()
///   AAD_SLO_BACKUP_WINDOW_S=<sec>  per-session backup-window SLO fed to
///                                  the HealthMonitor's burn-rate
///                                  windows (degrades /healthz when the
///                                  fast burn exceeds the alert)
///   AAD_SLO_BYTES_SAVED_PER_S=<v>  bytes-saved-rate SLO (same monitor)
///   AAD_STALL_DEADLINE_S=<sec>     stage stall-watchdog deadline
///                                  (default 30s)
///   AAD_OPS_LINGER_S=<sec>         keep the ops server up this long
///                                  after finish() so an external
///                                  scraper can take a final snapshot
///
/// Construction wires a Telemetry context and installs its flight
/// recorder as the process-global crash recorder; finish() (or the
/// destructor) writes the requested artifacts and uninstalls. Pass
/// telemetry() to the scheme under observation.
class Observability {
 public:
  Observability();
  ~Observability();

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] telemetry::Telemetry& telemetry() noexcept {
    return telemetry_;
  }
  [[nodiscard]] bool report_requested() const noexcept {
    return !report_path_.empty();
  }
  [[nodiscard]] bool trace_requested() const noexcept {
    return !trace_path_.empty();
  }
  /// The live introspection server, when AAD_OPS_PORT asked for one.
  [[nodiscard]] telemetry::OpsServer* ops_server() noexcept {
    return ops_ ? ops_.get() : nullptr;
  }
  /// The health monitor, when an SLO/ops knob brought one up.
  [[nodiscard]] telemetry::HealthMonitor* health() noexcept {
    return health_ ? health_.get() : nullptr;
  }

  /// Write the requested artifacts (idempotent). When AAD_RUN_REPORT is
  /// set, a RunReport pre-filled with the telemetry context is passed to
  /// `fill` for layer sections, then written. Returns the report path
  /// (empty when none was requested).
  std::string finish(
      const std::function<void(telemetry::RunReport&)>& fill = {});

 private:
  telemetry::Telemetry telemetry_;
  telemetry::TraceExporter exporter_;
  std::string report_path_;
  std::string trace_path_;
  std::string profile_path_;
  std::string prom_path_;
  std::unique_ptr<telemetry::SpanProfiler> profiler_;
  std::unique_ptr<telemetry::HealthMonitor> health_;
  std::unique_ptr<telemetry::OpsServer> ops_;
  double ops_linger_s_ = 0.0;
  bool finished_ = false;
};

struct BenchConfig {
  std::uint64_t session_mib = 32;
  std::uint32_t sessions = 10;
  std::uint64_t seed = 20110926;

  static BenchConfig from_env();

  dataset::DatasetConfig dataset_config() const;
};

/// One scheme's full multi-session run.
struct SchemeRun {
  std::string name;
  std::vector<backup::SessionReport> reports;
  std::uint64_t final_stored_bytes = 0;
  std::uint64_t total_uploaded_bytes = 0;
  std::uint64_t total_upload_requests = 0;
  double monthly_cost = 0.0;
};

/// The paper's scheme lineup. `include_full` prepends the non-dedup
/// full-backup reference (used by Figs. 7 and 9).
std::vector<std::string> scheme_names(bool include_full);

/// Instantiate a scheme by lineup name against a target. A non-null
/// `telemetry` is attached where the scheme supports it (AA-Dedupe).
std::unique_ptr<backup::BackupScheme> make_scheme(
    const std::string& name, cloud::CloudTarget& target,
    telemetry::Telemetry* telemetry = nullptr);

/// Build metadata (compiler, flags, preset, hardware threads) as a JSON
/// object string — compact when indent == 0. Benches stamp this into
/// their artifacts so numbers are comparable across machines/configs.
std::string build_metadata_json(int indent = 0);

/// Run every scheme in `names` over the same snapshot sequence (each gets
/// its own cloud target). Prints one progress line per scheme.
std::vector<SchemeRun> run_suite(const BenchConfig& config,
                                 const std::vector<std::string>& names);

/// The snapshot sequence a suite runs on (for benches that need the
/// workload itself).
std::vector<dataset::Snapshot> suite_snapshots(const BenchConfig& config);

}  // namespace aadedupe::bench
