// Figures 1 & 2: file-count and storage-capacity distributions by file
// size in the PC dataset.
//
// Paper reference points (10 PCs, Section II.C):
//   * ~61% of all files are smaller than 10 KB but hold only ~1.2% of the
//     total storage capacity;
//   * only ~1.4% of files are larger than 1 MB but occupy ~75% of the
//     capacity.
//
// This bench generates the dataset in stats-only mode (real Table I mean
// file sizes, no content materialization, no size caps) and prints both
// histograms plus the two headline statistics.
#include <cstdio>

#include "bench_common.hpp"
#include "dataset/generator.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  dataset::DatasetConfig config;
  config.seed = bench::BenchConfig::from_env().seed;
  config.stats_only = true;
  // Metadata-only: model the paper's multi-PC corpus size directly.
  config.session_bytes = 64ull * 1024 * 1024 * 1024;

  dataset::DatasetGenerator generator(config);
  const dataset::Snapshot snapshot = generator.initial();
  const auto bins = dataset::size_histogram(snapshot);

  const double total_files = static_cast<double>(snapshot.files.size());
  const double total_bytes = static_cast<double>(snapshot.total_bytes());

  std::printf("=== Fig. 1 / Fig. 2: file count and storage capacity by file "
              "size ===\n");
  std::printf("dataset: %zu files, %s (stats-only mode, paper-scale file "
              "sizes)\n\n",
              snapshot.files.size(), format_bytes(snapshot.total_bytes()).c_str());

  static const char* kBinLabels[] = {"<1KB",      "1KB-10KB",  "10KB-100KB",
                                     "100KB-1MB", "1MB-10MB",  "10MB-100MB",
                                     ">=100MB"};
  metrics::TableWriter table({"size bin", "files", "% of files",
                              "capacity", "% of capacity"});
  for (std::size_t i = 0; i < bins.size(); ++i) {
    table.add_row({kBinLabels[i],
                   metrics::TableWriter::integer(bins[i].file_count),
                   metrics::TableWriter::percent(
                       static_cast<double>(bins[i].file_count) / total_files),
                   format_bytes(bins[i].total_bytes),
                   metrics::TableWriter::percent(
                       static_cast<double>(bins[i].total_bytes) /
                       total_bytes)});
  }
  table.print();

  // The paper's two headline statistics.
  std::uint64_t tiny_files = bins[0].file_count + bins[1].file_count;
  std::uint64_t tiny_bytes = bins[0].total_bytes + bins[1].total_bytes;
  std::uint64_t large_files = bins[4].file_count + bins[5].file_count +
                              bins[6].file_count;
  std::uint64_t large_bytes = bins[4].total_bytes + bins[5].total_bytes +
                              bins[6].total_bytes;

  std::printf("\nfiles < 10KB : %5.1f%% of files, %5.2f%% of capacity "
              "(paper: ~61%%, ~1.2%%)\n",
              100.0 * static_cast<double>(tiny_files) / total_files,
              100.0 * static_cast<double>(tiny_bytes) / total_bytes);
  std::printf("files > 1MB  : %5.1f%% of files, %5.1f%% of capacity "
              "(paper: ~1.4%%, ~75%%)\n",
              100.0 * static_cast<double>(large_files) / total_files,
              100.0 * static_cast<double>(large_bytes) / total_bytes);
  return 0;
}
